#!/bin/sh
# CTest smoke test for the CLI exit-code contract:
#   0 = success, 1 = user error, 2 = invalid option value.
# Usage: dpuc_smoke.sh <path-to-dpuc> [path-to-dse_sweep] \
#                      [path-to-dpulint] [path-to-serve_latency]
# The optional second binary gets the DSE driver checks (strict
# --axes/--shards/--threads validation, journal + resume round); the
# optional third gets the verifier-CLI checks (clean program -> 0,
# corrupt file -> 1, bad flag -> 2); the optional fourth gets the
# serving-bench QoS flag checks (--priority-mix/--deadline-us/
# --queue-depth strict validation).
set -u

DPUC="${1:?usage: dpuc_smoke.sh <path-to-dpuc> [path-to-dse_sweep] [path-to-dpulint] [path-to-serve_latency]}"
DSE="${2:-}"
DPULINT="${3:-}"
SERVE="${4:-}"
TMP=$(mktemp -d) || exit 125
trap 'rm -rf "$TMP"' EXIT
fails=0

check() {
    expected="$1"
    desc="$2"
    shift 2
    "$@" >"$TMP/out" 2>"$TMP/err"
    got=$?
    if [ "$got" -ne "$expected" ]; then
        echo "FAIL: $desc: expected exit $expected, got $got"
        sed 's/^/  stderr: /' "$TMP/err"
        fails=$((fails + 1))
    else
        echo "ok: $desc (exit $got)"
    fi
}

# A tiny valid DAG: out = (a + b) * (a + b).
cat > "$TMP/tiny.dag" <<EOF
dpu-dag v1 4
i
i
+ 0 1
* 2 2
EOF

# Successes (exit 0).
check 0 "compile" "$DPUC" "$TMP/tiny.dag"
check 0 "--disasm" "$DPUC" "$TMP/tiny.dag" --disasm
check 0 "--simulate" "$DPUC" "$TMP/tiny.dag" --simulate
check 0 "--optimize --simulate" \
    "$DPUC" "$TMP/tiny.dag" --optimize --simulate
check 0 "--out + --dot" \
    "$DPUC" "$TMP/tiny.dag" --out="$TMP/tiny.bin" --dot="$TMP/tiny.dot"
check 0 "--partition + --threads" \
    "$DPUC" "$TMP/tiny.dag" --partition=1 --threads=4 --simulate
check 0 "pipelined multi-partition compile" \
    "$DPUC" "$TMP/tiny.dag" --partition=1 --threads=3 --verify \
    --simulate
[ -s "$TMP/tiny.bin" ] || {
    echo "FAIL: --out wrote no binary image"
    fails=$((fails + 1))
}

# Static verification: --verify runs the compiler/verify.hh pass on
# every pipeline stage; --prog= writes the self-contained program
# image dpulint consumes.
check 0 "--verify" "$DPUC" "$TMP/tiny.dag" --verify
check 0 "--verify --simulate --partition" \
    "$DPUC" "$TMP/tiny.dag" --verify --simulate --partition=1
check 0 "--prog image" \
    "$DPUC" "$TMP/tiny.dag" --verify --prog="$TMP/tiny.dpuprog"
[ -s "$TMP/tiny.dpuprog" ] || {
    echo "FAIL: --prog wrote no program image"
    fails=$((fails + 1))
}

# Real-matrix ingestion: --matrix compiles the SpTRSV DAG lowered
# from a Matrix Market file instead of reading a .dag file.
cat > "$TMP/tiny.mtx" <<EOF
%%MatrixMarket matrix coordinate real general
% 3x3 lower bidiagonal chain

3 3 5
1 1 2.0
2 1 -1.0
2 2 2.0
3 2 -1.0
3 3 2.0
EOF
check 0 "--matrix compile" "$DPUC" --matrix="$TMP/tiny.mtx"
check 0 "--matrix --simulate" \
    "$DPUC" --matrix="$TMP/tiny.mtx" --simulate
check 0 "--matrix --verify --disasm" \
    "$DPUC" --matrix="$TMP/tiny.mtx" --verify --disasm

# User errors (exit 1).
check 1 "bad flag" "$DPUC" "$TMP/tiny.dag" --no-such-flag
check 1 "no input file" "$DPUC"
check 1 "missing dag file" "$DPUC" "$TMP/does-not-exist.dag"
check 1 "two input files" "$DPUC" "$TMP/tiny.dag" "$TMP/tiny.dag"

# Malformed DAG file: a user error, not an internal crash.
printf 'not a dag\n' > "$TMP/bad.dag"
check 1 "malformed dag" "$DPUC" "$TMP/bad.dag"

# --matrix input-selection contract: exactly one of <dag> / --matrix,
# the file must exist and parse, and an empty value is an invalid
# option value (exit 2) like every other typed flag.
check 1 "both dag and --matrix" \
    "$DPUC" "$TMP/tiny.dag" --matrix="$TMP/tiny.mtx"
check 1 "missing matrix file" \
    "$DPUC" --matrix="$TMP/does-not-exist.mtx"
printf 'not a matrix\n' > "$TMP/bad.mtx"
check 1 "malformed matrix" "$DPUC" --matrix="$TMP/bad.mtx"
check 2 "--matrix= empty value" "$DPUC" --matrix=

# Invalid option values (exit 2): atoi used to turn these into 0 and
# silently clamp or misconfigure.
check 2 "--threads=0" "$DPUC" "$TMP/tiny.dag" --threads=0
check 2 "--threads non-numeric" "$DPUC" "$TMP/tiny.dag" --threads=abc
check 2 "--threads trailing junk" "$DPUC" "$TMP/tiny.dag" --threads=4x
check 2 "--depth non-numeric" "$DPUC" "$TMP/tiny.dag" --depth=deep
check 2 "--seed negative" "$DPUC" "$TMP/tiny.dag" --seed=-1
check 2 "--window=0" "$DPUC" "$TMP/tiny.dag" --window=0
check 2 "--window non-numeric" "$DPUC" "$TMP/tiny.dag" --window=wide
check 2 "--window trailing junk" "$DPUC" "$TMP/tiny.dag" --window=8x

# Impossible configurations are fatal user errors (exit 1), not
# crashes: bank conflict masks are 64-bit, so banks > 64 is rejected
# by the config check before any compile state is built.
check 1 "--banks=128 rejected" "$DPUC" "$TMP/tiny.dag" --banks=128

# dse_sweep: strict --axes/--shards/--threads validation (exit 2 on
# junk values, before any compile starts), --resume preconditions
# (exit 1), and a real --quick single-point sweep with a journal +
# resume round (both exit 0, journal non-empty).
if [ -n "$DSE" ]; then
    AXES='depth=1;banks=8;regs=16'
    check 0 "dse_sweep --quick sweep + journal" \
        "$DSE" --quick --axes="$AXES" --threads=2 --shards=2 \
        --journal="$TMP/dse.jsonl"
    [ -s "$TMP/dse.jsonl" ] || {
        echo "FAIL: dse_sweep wrote no journal"
        fails=$((fails + 1))
    }
    check 0 "dse_sweep --resume reuses the journal" \
        "$DSE" --quick --axes="$AXES" --journal="$TMP/dse.jsonl" \
        --resume

    check 2 "dse_sweep unknown axis name" \
        "$DSE" --quick --axes='bogus=1'
    check 2 "dse_sweep empty axis list" \
        "$DSE" --quick --axes='depth='
    check 2 "dse_sweep non-numeric axis value" \
        "$DSE" --quick --axes='depth=abc'
    check 2 "dse_sweep trailing comma in axis list" \
        "$DSE" --quick --axes='depth=1,'
    check 2 "dse_sweep non-power-of-two banks" \
        "$DSE" --quick --axes='banks=12'
    check 2 "dse_sweep depth out of range" \
        "$DSE" --quick --axes='depth=9'
    check 2 "dse_sweep --shards=0" "$DSE" --quick --shards=0
    check 2 "dse_sweep --shards non-numeric" \
        "$DSE" --quick --shards=many
    check 2 "dse_sweep --threads=0" "$DSE" --quick --threads=0
    check 2 "dse_sweep --scale junk" "$DSE" --quick --scale=big

    # Evaluation-fidelity tiers: every valid tier name is accepted,
    # anything else is an invalid option value (exit 2), and --refine
    # without a fast tier is a usage error (exit 1).
    check 0 "dse_sweep --fidelity=cycle" \
        "$DSE" --quick --axes="$AXES" --fidelity=cycle
    check 0 "dse_sweep --fidelity=table" \
        "$DSE" --quick --axes="$AXES" --fidelity=table
    check 0 "dse_sweep --fidelity=analytic" \
        "$DSE" --quick --axes="$AXES" --fidelity=analytic
    check 0 "dse_sweep --fidelity=analytic --refine" \
        "$DSE" --quick --axes="$AXES" --fidelity=analytic --refine
    check 2 "dse_sweep --fidelity unknown tier" \
        "$DSE" --quick --fidelity=bogus
    check 2 "dse_sweep --fidelity empty" \
        "$DSE" --quick --fidelity=
    check 2 "dse_sweep --fidelity case-sensitive" \
        "$DSE" --quick --fidelity=Cycle
    check 2 "dse_sweep --refine-error out of range" \
        "$DSE" --quick --fidelity=table --refine --refine-error=1.0
    check 1 "dse_sweep --refine with cycle fidelity" \
        "$DSE" --quick --refine

    # Fleet axes: --ranks/--xfer-gbps follow the same strict contract.
    check 0 "dse_sweep fleet axes --quick" \
        "$DSE" --quick --axes="$AXES" --ranks=2 --xfer-gbps=4
    check 0 "dse_sweep --xfer-gbps=inf (free link)" \
        "$DSE" --quick --axes="$AXES" --ranks=2 --xfer-gbps=inf
    check 2 "dse_sweep --ranks=0" "$DSE" --quick --ranks=0
    check 2 "dse_sweep --ranks non-numeric" \
        "$DSE" --quick --ranks=many
    check 2 "dse_sweep --ranks trailing junk" \
        "$DSE" --quick --ranks=4x
    check 2 "dse_sweep --xfer-gbps=0" "$DSE" --quick --xfer-gbps=0
    check 2 "dse_sweep --xfer-gbps negative" \
        "$DSE" --quick --xfer-gbps=-2
    check 2 "dse_sweep --xfer-gbps non-numeric" \
        "$DSE" --quick --xfer-gbps=junk

    check 1 "dse_sweep --resume without --journal" \
        "$DSE" --quick --resume
    printf 'not a journal\n' > "$TMP/notes.txt"
    check 1 "dse_sweep --resume refuses a non-journal file" \
        "$DSE" --quick --axes="$AXES" --journal="$TMP/notes.txt" \
        --resume
    grep -q 'not a journal' "$TMP/notes.txt" || {
        echo "FAIL: dse_sweep overwrote a non-journal file"
        fails=$((fails + 1))
    }
    check 1 "dse_sweep journal from a different sweep" \
        "$DSE" --quick --axes='depth=1;banks=16;regs=16' \
        --journal="$TMP/dse.jsonl" --resume
    check 1 "dse_sweep unknown flag" "$DSE" --no-such-flag

    # Static verification of every point compile: a quick verified
    # sweep must succeed end to end.
    check 0 "dse_sweep --verify quick sweep" \
        "$DSE" --quick --axes="$AXES" --verify
fi

# dpulint: the verifier CLI's documented exit-code contract
# (0 = every program clean, 1 = diagnostics or unreadable/corrupt
# input, 2 = usage error).
if [ -n "$DPULINT" ]; then
    "$DPUC" "$TMP/tiny.dag" --prog="$TMP/lint.dpuprog" \
        >/dev/null 2>&1
    check 0 "dpulint clean program" "$DPULINT" "$TMP/lint.dpuprog"
    check 0 "dpulint --disasm" \
        "$DPULINT" --disasm "$TMP/lint.dpuprog"

    head -c 40 "$TMP/lint.dpuprog" > "$TMP/trunc.dpuprog"
    check 1 "dpulint truncated image" "$DPULINT" "$TMP/trunc.dpuprog"
    printf 'garbage' > "$TMP/garbage.dpuprog"
    check 1 "dpulint corrupt image" "$DPULINT" "$TMP/garbage.dpuprog"
    check 1 "dpulint missing file" \
        "$DPULINT" "$TMP/does-not-exist.dpuprog"
    check 1 "dpulint one bad among good" \
        "$DPULINT" "$TMP/lint.dpuprog" "$TMP/trunc.dpuprog"

    check 2 "dpulint no input files" "$DPULINT"
    check 2 "dpulint unknown flag" "$DPULINT" --no-such-flag
    check 2 "dpulint bad --max-diags" \
        "$DPULINT" --max-diags=lots "$TMP/lint.dpuprog"
fi

# Serving-bench QoS flags: same strict-validation contract (exit 2 on
# negative/non-numeric/out-of-range values). Rejection happens at flag
# parse time, before any workload is compiled, so these are instant.
if [ -n "$SERVE" ]; then
    check 2 "serve --priority-mix negative" \
        "$SERVE" --quick --priority-mix=-0.1
    check 2 "serve --priority-mix > 1" \
        "$SERVE" --quick --priority-mix=1.5
    check 2 "serve --priority-mix non-numeric" \
        "$SERVE" --quick --priority-mix=abc
    check 2 "serve --deadline-us negative" \
        "$SERVE" --quick --deadline-us=-5
    check 2 "serve --deadline-us zero" \
        "$SERVE" --quick --deadline-us=0
    check 2 "serve --deadline-us non-numeric" \
        "$SERVE" --quick --deadline-us=soon
    check 2 "serve --queue-depth negative" \
        "$SERVE" --quick --queue-depth=-1
    check 2 "serve --queue-depth non-numeric" \
        "$SERVE" --quick --queue-depth=deep
    check 2 "serve --queue-depth trailing junk" \
        "$SERVE" --quick --queue-depth=64x
    check 2 "serve --fidelity unknown tier" \
        "$SERVE" --quick --fidelity=bogus
    check 2 "serve --fidelity empty" \
        "$SERVE" --quick --fidelity=
    check 1 "serve unknown flag still exit 1" \
        "$SERVE" --quick --no-such-flag

    # Fleet flags: strict validation plus one real multi-rank quick
    # run exercising placement + finite-link accounting end to end.
    check 0 "serve fleet quick run" \
        "$SERVE" --quick --ranks=2 --xfer-gbps=8 --placement=affinity
    check 2 "serve --ranks=0" "$SERVE" --quick --ranks=0
    check 2 "serve --ranks non-numeric" "$SERVE" --quick --ranks=lots
    check 2 "serve --ranks trailing junk" "$SERVE" --quick --ranks=2x
    check 2 "serve --xfer-gbps=0" "$SERVE" --quick --xfer-gbps=0
    check 2 "serve --xfer-gbps negative" \
        "$SERVE" --quick --xfer-gbps=-3
    check 2 "serve --xfer-gbps non-numeric" \
        "$SERVE" --quick --xfer-gbps=fast
    check 2 "serve --placement unknown policy" \
        "$SERVE" --quick --placement=bogus
    check 2 "serve --placement empty" \
        "$SERVE" --quick --placement=
fi

if [ "$fails" -ne 0 ]; then
    echo "dpuc_smoke: $fails check(s) failed"
    exit 1
fi
echo "dpuc_smoke: all checks passed"
exit 0
