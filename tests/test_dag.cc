/**
 * @file
 * Unit tests for the DAG substrate: structure, algorithms,
 * binarization, evaluation, and serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dag/algorithms.hh"
#include "dag/binarize.hh"
#include "dag/dag.hh"
#include "dag/eval.hh"
#include "dag/io.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

/** (a+b) * (b+c) with inputs a, b, c. */
Dag
diamond()
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId c = d.addInput();
    NodeId s1 = d.addNode(OpType::Add, {a, b});
    NodeId s2 = d.addNode(OpType::Add, {b, c});
    d.addNode(OpType::Mul, {s1, s2});
    return d;
}

TEST(Dag, Counts)
{
    Dag d = diamond();
    EXPECT_EQ(d.numNodes(), 6u);
    EXPECT_EQ(d.numInputs(), 3u);
    EXPECT_EQ(d.numOperations(), 3u);
    EXPECT_EQ(d.numEdges(), 6u);
}

TEST(Dag, SuccessorsTracked)
{
    Dag d = diamond();
    EXPECT_EQ(d.successors(1).size(), 2u); // b feeds both sums
    EXPECT_EQ(d.outDegree(0), 1u);
    EXPECT_EQ(d.maxOutDegree(), 2u);
}

TEST(Dag, SinksAreRoots)
{
    Dag d = diamond();
    auto sinks = d.sinks();
    ASSERT_EQ(sinks.size(), 1u);
    EXPECT_EQ(sinks[0], 5u);
}

TEST(Dag, OperandMustExist)
{
    Dag d;
    d.addInput();
    EXPECT_THROW(d.addNode(OpType::Add, {0, 5}), PanicError);
}

TEST(Dag, IsBinary)
{
    Dag d = diamond();
    EXPECT_TRUE(d.isBinary());
    NodeId i = d.addInput();
    d.addNode(OpType::Add, {0, 1, i});
    EXPECT_FALSE(d.isBinary());
}

TEST(Algorithms, AsapLevels)
{
    Dag d = diamond();
    auto lvl = asapLevels(d);
    EXPECT_EQ(lvl[0], 0u);
    EXPECT_EQ(lvl[3], 1u);
    EXPECT_EQ(lvl[5], 2u);
    EXPECT_EQ(longestPathLength(d), 2u);
}

TEST(Algorithms, LevelsGroupIndependentNodes)
{
    Dag d = diamond();
    auto by_level = nodesByLevel(d);
    ASSERT_EQ(by_level.size(), 3u);
    EXPECT_EQ(by_level[0].size(), 3u);
    EXPECT_EQ(by_level[1].size(), 2u);
    EXPECT_EQ(by_level[2].size(), 1u);
}

TEST(Algorithms, DfsPositionsAreAPermutation)
{
    Dag d = generateRandomDag(16, 200, 3);
    auto pos = dfsPreorderPositions(d);
    std::vector<bool> seen(d.numNodes(), false);
    for (uint32_t p : pos) {
        ASSERT_LT(p, d.numNodes());
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Algorithms, StatsMatchByHand)
{
    Dag d = diamond();
    DagStats s = computeStats(d);
    EXPECT_EQ(s.numOperations, 3u);
    EXPECT_EQ(s.numInputs, 3u);
    EXPECT_EQ(s.longestPath, 2u);
    EXPECT_DOUBLE_EQ(s.parallelism, 1.5);
}

TEST(Eval, Diamond)
{
    Dag d = diamond();
    auto v = evaluate(d, {1.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(v[3], 3.0);
    EXPECT_DOUBLE_EQ(v[4], 6.0);
    EXPECT_DOUBLE_EQ(v[5], 18.0);
    auto sinks = evaluateSinks(d, {1.0, 2.0, 4.0});
    ASSERT_EQ(sinks.size(), 1u);
    EXPECT_DOUBLE_EQ(sinks[0], 18.0);
}

TEST(Eval, MultiInputNode)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId c = d.addInput();
    d.addNode(OpType::Mul, {a, b, c});
    auto v = evaluate(d, {2.0, 3.0, 5.0});
    EXPECT_DOUBLE_EQ(v[3], 30.0);
}

TEST(Eval, WrongInputCountPanics)
{
    Dag d = diamond();
    EXPECT_THROW(evaluate(d, {1.0}), PanicError);
}

TEST(Binarize, NoOpOnBinaryDag)
{
    Dag d = diamond();
    auto res = binarize(d);
    EXPECT_EQ(res.dag.numNodes(), d.numNodes());
    EXPECT_TRUE(res.dag.isBinary());
}

TEST(Binarize, ExpandsWideNodes)
{
    Dag d;
    std::vector<NodeId> ins;
    for (int i = 0; i < 5; ++i)
        ins.push_back(d.addInput());
    d.addNode(OpType::Add, {ins});
    auto res = binarize(d);
    EXPECT_TRUE(res.dag.isBinary());
    // 5-input add becomes 4 binary adds.
    EXPECT_EQ(res.dag.numOperations(), 4u);
}

TEST(Binarize, BalancedDepth)
{
    Dag d;
    std::vector<NodeId> ins;
    for (int i = 0; i < 8; ++i)
        ins.push_back(d.addInput());
    d.addNode(OpType::Add, {ins});
    auto res = binarize(d);
    // Balanced tree over 8 leaves has depth 3, not 7.
    EXPECT_EQ(longestPathLength(res.dag), 3u);
}

TEST(Binarize, ValuePreserving)
{
    Rng rng(99);
    Dag d;
    std::vector<NodeId> pool;
    for (int i = 0; i < 10; ++i)
        pool.push_back(d.addInput());
    for (int i = 0; i < 40; ++i) {
        size_t fanin = 2 + rng.below(4);
        std::vector<NodeId> ops;
        for (size_t k = 0; k < fanin; ++k)
            ops.push_back(rng.pick(pool));
        pool.push_back(
            d.addNode(rng.chance(0.5) ? OpType::Add : OpType::Mul, ops));
    }

    std::vector<double> inputs;
    for (int i = 0; i < 10; ++i)
        inputs.push_back(0.5 + rng.uniform());

    auto res = binarize(d);
    auto ref = evaluate(d, inputs);
    auto got = evaluate(res.dag, inputs);
    for (NodeId id = 0; id < d.numNodes(); ++id)
        EXPECT_NEAR(got[res.valueOf[id]], ref[id], 1e-9 * std::abs(ref[id]))
            << "node " << id;
}

TEST(Binarize, SingleOperandForwarded)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId one = d.addNode(OpType::Add, {a});
    d.addNode(OpType::Mul, {one, a});
    auto res = binarize(d);
    EXPECT_TRUE(res.dag.isBinary());
    // The 1-input add disappears; its value is the input itself.
    EXPECT_EQ(res.valueOf[one], res.valueOf[a]);
}

TEST(Io, RoundTrip)
{
    Dag d = generateRandomDag(8, 50, 17);
    std::stringstream ss;
    writeDag(d, ss);
    Dag back = readDag(ss);
    ASSERT_EQ(back.numNodes(), d.numNodes());
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        EXPECT_EQ(back.node(id).op, d.node(id).op);
        EXPECT_EQ(back.node(id).operands, d.node(id).operands);
    }
}

TEST(Io, RejectsGarbage)
{
    std::stringstream ss("hello world 3\n");
    EXPECT_THROW(readDag(ss), FatalError);
}

TEST(Io, RejectsForwardReference)
{
    std::stringstream ss("dpu-dag v1 2\ni\n+ 0 5\n");
    EXPECT_THROW(readDag(ss), FatalError);
}

} // namespace
} // namespace dpu
