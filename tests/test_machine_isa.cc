/**
 * @file
 * Machine-level ISA semantics tests: hand-crafted programs executed
 * on the simulator, independent of the compiler. These pin down the
 * architecture contract — automatic write addressing, valid_rst,
 * pass-through routing, pipeline timing, and the panics that guard
 * them.
 */

#include <gtest/gtest.h>

#include "compiler/program.hh"
#include "sim/machine.hh"

namespace dpu {
namespace {

/** A D=1, B=2, R=4 machine: one tree of one PE, two banks. */
ArchConfig
tinyCfg()
{
    ArchConfig c;
    c.depth = 1;
    c.banks = 2;
    c.regsPerBank = 4;
    c.check();
    return c;
}

LoadInstr
load(uint32_t row, std::initializer_list<uint32_t> banks, uint32_t b)
{
    LoadInstr in;
    in.memRow = row;
    in.enable.assign(b, false);
    for (uint32_t k : banks)
        in.enable[k] = true;
    return in;
}

StoreInstr
store(uint32_t row, uint32_t bank, uint32_t addr, uint32_t b)
{
    StoreInstr in;
    in.memRow = row;
    in.enable.assign(b, false);
    in.readAddr.assign(b, 0);
    in.enable[bank] = true;
    in.readAddr[bank] = static_cast<uint16_t>(addr);
    return in;
}

/** Single-PE exec: out = a(bank0@addr0) op b(bank1@addr1) -> bank. */
ExecInstr
exec1(const ArchConfig &c, PeOp op, uint32_t addr0, uint32_t addr1,
      uint32_t dst_bank, bool rst0 = false, bool rst1 = false)
{
    ExecInstr e;
    e.peOp.assign(c.numPes(), PeOp::Nop);
    e.peOp[0] = op;
    e.inputSel = {0, 1};
    e.readAddr = {static_cast<uint16_t>(addr0),
                  static_cast<uint16_t>(addr1)};
    e.validRst = {rst0, rst1};
    e.writeEnable.assign(c.banks, false);
    e.outputSel.assign(c.banks, 0);
    e.writeEnable[dst_bank] = true;
    return e;
}

/** Wrap raw instructions into a runnable program. */
CompiledProgram
makeProgram(const ArchConfig &cfg, std::vector<Instruction> instrs,
            std::vector<std::pair<uint32_t, uint32_t>> inputs,
            std::vector<CompiledProgram::OutputLoc> outputs,
            uint32_t rows)
{
    CompiledProgram p;
    p.cfg = cfg;
    p.instructions = std::move(instrs);
    p.numRows = rows;
    p.inputLocation = std::move(inputs);
    p.outputs = std::move(outputs);
    return p;
}

TEST(MachineIsa, LoadStoreRoundTrip)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0}, c.banks)); // mem[0][0] -> bank0@0
    prog.push_back(NopInstr{});
    prog.push_back(store(1, 0, 0, c.banks)); // bank0@0 -> mem[1][0]
    auto p = makeProgram(c, prog, {{0, 0}}, {{0, 1, 0}}, 2);
    auto res = Machine(p).run({42.5});
    EXPECT_DOUBLE_EQ(res.outputs[0], 42.5);
}

TEST(MachineIsa, AutoWriteTakesLowestFreeAddress)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0}, c.banks)); // -> bank0@0
    prog.push_back(load(1, {0}, c.banks)); // -> bank0@1
    prog.push_back(load(2, {0}, c.banks)); // -> bank0@2
    prog.push_back(NopInstr{});
    // Read them back at the addresses the priority encoder chose.
    prog.push_back(store(3, 0, 1, c.banks));
    prog.push_back(store(4, 0, 0, c.banks));
    prog.push_back(store(5, 0, 2, c.banks));
    auto p = makeProgram(c, prog, {{0, 0}, {1, 0}, {2, 0}},
                         {{0, 3, 0}, {1, 4, 0}, {2, 5, 0}}, 6);
    auto res = Machine(p).run({10, 20, 30});
    EXPECT_DOUBLE_EQ(res.outputs[0], 20); // row3 = @1 = 2nd load
    EXPECT_DOUBLE_EQ(res.outputs[1], 10);
    EXPECT_DOUBLE_EQ(res.outputs[2], 30);
}

TEST(MachineIsa, ValidRstFreesForReuse)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0}, c.banks));    // v1 -> bank0@0
    prog.push_back(NopInstr{});
    prog.push_back(store(2, 0, 0, c.banks));  // store frees @0
    prog.push_back(load(1, {0}, c.banks));    // v2 -> bank0@0 again
    prog.push_back(NopInstr{});
    prog.push_back(store(3, 0, 0, c.banks));
    auto p = makeProgram(c, prog, {{0, 0}, {1, 0}},
                         {{0, 2, 0}, {1, 3, 0}}, 4);
    auto res = Machine(p).run({7, 9});
    EXPECT_DOUBLE_EQ(res.outputs[0], 7);
    EXPECT_DOUBLE_EQ(res.outputs[1], 9);
}

TEST(MachineIsa, ExecAddsThroughTheTree)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0, 1}, c.banks)); // a -> b0@0, b -> b1@0
    prog.push_back(NopInstr{});
    prog.push_back(exec1(c, PeOp::Add, 0, 0, 0, true, true));
    // D+1 = 2 stages: result readable 2 cycles after issue.
    prog.push_back(NopInstr{});
    // Output reused bank0@0 (freed by rst at exec issue).
    prog.push_back(store(1, 0, 0, c.banks));
    auto p = makeProgram(c, prog, {{0, 0}, {0, 1}}, {{0, 1, 0}}, 2);
    auto res = Machine(p).run({2.25, 3.5});
    EXPECT_DOUBLE_EQ(res.outputs[0], 5.75);
}

TEST(MachineIsa, PassThroughForwardsOneInput)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0, 1}, c.banks));
    prog.push_back(NopInstr{});
    // PassB reads only its right port (bank1), so only bank1 may
    // carry valid_rst; bank0 is drained by a store instead.
    prog.push_back(exec1(c, PeOp::PassB, 0, 0, 0, false, true));
    prog.push_back(store(2, 0, 0, c.banks)); // frees the unused input
    prog.push_back(store(1, 0, 1, c.banks)); // the forwarded value
    auto p = makeProgram(c, prog, {{0, 0}, {0, 1}},
                         {{0, 1, 0}, {1, 2, 0}}, 3);
    auto res = Machine(p).run({111, 222});
    EXPECT_DOUBLE_EQ(res.outputs[0], 222); // PassB forwards the right
    EXPECT_DOUBLE_EQ(res.outputs[1], 111);
}

TEST(MachineIsa, Copy4MovesAcrossBanks)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0}, c.banks)); // v -> bank0@0
    prog.push_back(NopInstr{});
    Copy4Instr cp;
    cp.validRst.assign(c.banks, false);
    cp.validRst[0] = true; // last read of the source
    cp.slots[0] = {true, 0, 0, 1};
    prog.push_back(cp);
    prog.push_back(NopInstr{});
    prog.push_back(store(1, 1, 0, c.banks)); // read it from bank1
    auto p = makeProgram(c, prog, {{0, 0}}, {{0, 1, 1}}, 2);
    auto res = Machine(p).run({64.0});
    EXPECT_DOUBLE_EQ(res.outputs[0], 64.0);
}

TEST(MachineIsa, ReadInFlightPanics)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0}, c.banks));
    prog.push_back(store(1, 0, 0, c.banks)); // 1 cycle later: too soon
    auto p = makeProgram(c, prog, {{0, 0}}, {{0, 1, 0}}, 2);
    EXPECT_THROW(Machine(p).run({1.0}), PanicError);
}

TEST(MachineIsa, ReadInvalidRegisterPanics)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(store(0, 0, 0, c.banks)); // nothing was written
    auto p = makeProgram(c, prog, {}, {}, 1);
    EXPECT_THROW(Machine(p).run({}), PanicError);
}

TEST(MachineIsa, BankOverflowPanics)
{
    ArchConfig c = tinyCfg(); // R = 4
    std::vector<Instruction> prog;
    for (uint32_t i = 0; i < 5; ++i)
        prog.push_back(load(i, {0}, c.banks));
    auto p = makeProgram(c, prog, {{0, 0}, {1, 0}, {2, 0}, {3, 0},
                                   {4, 0}},
                         {}, 5);
    EXPECT_THROW(Machine(p).run({1, 2, 3, 4, 5}), PanicError);
}

TEST(MachineIsa, LeakedRegisterPanicsAtEnd)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0}, c.banks)); // never read, never freed
    prog.push_back(NopInstr{});
    auto p = makeProgram(c, prog, {{0, 0}}, {}, 1);
    EXPECT_THROW(Machine(p).run({5.0}), PanicError);
}

TEST(MachineIsa, RstWithoutReadPanics)
{
    ArchConfig c = tinyCfg();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0, 1}, c.banks));
    prog.push_back(NopInstr{});
    // Exec reads only bank0/bank1 port-wise... build an exec whose
    // validRst names a bank the instruction does not read.
    ExecInstr e;
    e.peOp.assign(c.numPes(), PeOp::Nop);
    e.peOp[0] = PeOp::PassA; // reads only port 0 (bank0)
    e.inputSel = {0, 0};
    e.readAddr = {0, 0};
    e.validRst = {false, true}; // but frees bank1: illegal
    e.writeEnable.assign(c.banks, false);
    e.outputSel.assign(c.banks, 0);
    e.writeEnable[0] = false;
    prog.push_back(e);
    auto p = makeProgram(c, prog, {{0, 0}, {0, 1}}, {}, 1);
    EXPECT_THROW(Machine(p).run({1, 2}), PanicError);
}

TEST(MachineIsa, DeepTreeComputesBalancedReduction)
{
    // D=2, one tree, 4 ports: ((a+b) * (c+d)).
    ArchConfig c;
    c.depth = 2;
    c.banks = 4;
    c.regsPerBank = 4;
    c.check();
    std::vector<Instruction> prog;
    prog.push_back(load(0, {0, 1, 2, 3}, c.banks));
    prog.push_back(NopInstr{});
    ExecInstr e;
    e.peOp.assign(c.numPes(), PeOp::Nop);
    e.peOp[c.peId({0, 1, 0})] = PeOp::Add;
    e.peOp[c.peId({0, 1, 1})] = PeOp::Add;
    e.peOp[c.peId({0, 2, 0})] = PeOp::Mul;
    e.inputSel = {0, 1, 2, 3};
    e.readAddr = {0, 0, 0, 0};
    e.validRst = {true, true, true, true};
    e.writeEnable.assign(c.banks, false);
    e.outputSel.assign(c.banks, 0);
    e.writeEnable[0] = true;
    // Bank 0's writers (per-layer): layer1 PE covering port 0, then
    // the root; select the root.
    e.outputSel[0] = 1;
    prog.push_back(e);
    prog.push_back(NopInstr{});
    prog.push_back(NopInstr{}); // D+1 = 3 stages
    prog.push_back(store(1, 0, 0, c.banks));
    auto p = makeProgram(
        c, prog, {{0, 0}, {0, 1}, {0, 2}, {0, 3}}, {{0, 1, 0}}, 2);
    auto res = Machine(p).run({1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(res.outputs[0], 21); // (1+2)*(3+4)
}

} // namespace
} // namespace dpu
