/**
 * @file
 * Fleet topology + host↔device transfer model tests: the
 * HostTransferModel arithmetic, the RankSet dispatch form, transfer
 * accounting through Machine/BatchMachine, evaluator-tier agreement
 * on transfer-inclusive latency, the virtual-time fleet simulator,
 * the rank-aware AsyncBatchServer, and the DSE fleet axes. The pinned
 * contracts:
 *
 *   - the default (free) transfer model charges exactly 0 everywhere,
 *     so every pre-fleet result is byte-identical;
 *   - transfer cost is statically computable, so all three evaluation
 *     tiers report the same transfer-inclusive cycle counts as the
 *     cycle-accurate machines;
 *   - per-request SimResults never depend on ranks, placement, or the
 *     transfer model — fleet accounting is batch-level only.
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/topology.hh"
#include "compiler/compiler.hh"
#include "model/dse.hh"
#include "model/evaluator.hh"
#include "sim/async.hh"
#include "sim/batch.hh"
#include "sim/fleet.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 32;
    return c;
}

const CompiledProgram &
testProgram()
{
    static const CompiledProgram prog = [] {
        Dag d = generateRandomDag(12, 260, 17);
        return compile(d, smallConfig());
    }();
    return prog;
}

std::vector<std::vector<double>>
testInputs(size_t n, uint64_t seed)
{
    const CompiledProgram &prog = testProgram();
    Rng rng(seed);
    std::vector<std::vector<double>> inputs(n);
    for (auto &in : inputs) {
        in.resize(prog.inputLocation.size());
        for (auto &x : in)
            x = 0.5 + rng.uniform();
    }
    return inputs;
}

TEST(Fleet, TransferModelDefaultIsFree)
{
    HostTransferModel m;
    EXPECT_TRUE(m.free());
    EXPECT_EQ(m.bytesCycles(1 << 20), 0u);
    EXPECT_EQ(m.batchCycles(4096, 1000), 0u);
}

TEST(Fleet, TransferModelFromGbps)
{
    // An infinite link is the free model, dispatch cost included.
    HostTransferModel inf = HostTransferModel::fromGbps(
        std::numeric_limits<double>::infinity(), 300e6);
    EXPECT_TRUE(inf.free());

    // 300 MHz over a 3 GB/s link: 0.1 cycles per byte.
    HostTransferModel m = HostTransferModel::fromGbps(3.0, 300e6);
    EXPECT_DOUBLE_EQ(m.cyclesPerByte, 0.1);
    EXPECT_EQ(m.dispatchCycles, 0u);
    EXPECT_EQ(m.bytesCycles(100), 10u);
    EXPECT_EQ(m.bytesCycles(101), 11u); // ceil, partial cycles round up
    EXPECT_EQ(m.batchCycles(100, 5), 50u);

    // A 1 us dispatch at 300 MHz is 300 cycles, paid once per batch.
    HostTransferModel d =
        HostTransferModel::fromGbps(3.0, 300e6, 1000.0);
    EXPECT_EQ(d.dispatchCycles, 300u);
    EXPECT_FALSE(d.free());
    EXPECT_EQ(d.batchCycles(100, 5), 300u + 50u);

    // Dispatch-only models are not free either.
    HostTransferModel disp;
    disp.dispatchCycles = 7;
    EXPECT_FALSE(disp.free());
    EXPECT_EQ(disp.batchCycles(1000, 3), 7u);
}

TEST(Fleet, TopologyAndRankSet)
{
    FleetTopology t;
    EXPECT_EQ(t.ranks, 1u);
    EXPECT_EQ(t.totalCores(), 4u);
    t.ranks = 32;
    t.coresPerRank = 4;
    EXPECT_EQ(t.totalCores(), 128u);

    RankSet rs = RankSet::firstN(4);
    EXPECT_EQ(rs.rank, 0u);
    EXPECT_EQ(rs.count(), 4u);
    EXPECT_FALSE(rs.empty());
    EXPECT_EQ(rs.cores.ids, CoreSet::firstN(4).ids);
}

TEST(Fleet, PlacementNames)
{
    Placement p = Placement::Affinity;
    EXPECT_TRUE(parsePlacementName("replicate", p));
    EXPECT_EQ(p, Placement::Replicate);
    EXPECT_TRUE(parsePlacementName("affinity", p));
    EXPECT_EQ(p, Placement::Affinity);
    EXPECT_FALSE(parsePlacementName("", p));
    EXPECT_FALSE(parsePlacementName("Replicate", p));
    EXPECT_FALSE(parsePlacementName("bogus", p));
    EXPECT_STREQ(placementName(Placement::Replicate), "replicate");
    EXPECT_STREQ(placementName(Placement::Affinity), "affinity");
}

TEST(Fleet, MachineChargesTransferSeparately)
{
    const CompiledProgram &prog = testProgram();
    auto inputs = testInputs(1, 31);

    SimResult base = Machine(prog).run(inputs[0]);
    EXPECT_EQ(base.stats.transferCycles, 0u);

    SimOptions opts;
    opts.transfer = HostTransferModel::fromGbps(2.0, 300e6, 500.0);
    SimResult fleet = Machine(prog, opts).run(inputs[0]);

    uint64_t expected =
        opts.transfer.batchCycles(hostTransferBytes(prog), 1);
    EXPECT_GT(expected, 0u);
    EXPECT_EQ(fleet.stats.transferCycles, expected);

    // Transfer is accounting only: outputs and compute stats are
    // byte-identical to the transfer-free run.
    EXPECT_EQ(fleet.outputs, base.outputs);
    EXPECT_EQ(fleet.stats.cycles, base.stats.cycles);
    EXPECT_EQ(fleet.stats.kindCount, base.stats.kindCount);
    EXPECT_EQ(fleet.stats.bankReads, base.stats.bankReads);
    EXPECT_EQ(fleet.stats.peOperations, base.stats.peOperations);
}

TEST(Fleet, BatchMachineRankSetAccounting)
{
    const CompiledProgram &prog = testProgram();
    auto inputs = testInputs(6, 47);
    HostTransferModel xfer =
        HostTransferModel::fromGbps(4.0, 300e6, 100.0);

    BatchResult base =
        BatchMachine(prog, CoreSet::firstN(2), 100).run(inputs);
    EXPECT_EQ(base.rank, 0u);
    EXPECT_EQ(base.transferCycles, 0u);
    EXPECT_EQ(base.totalWallCycles(), base.wallCycles);

    RankSet target{3, CoreSet::firstN(2)};
    BatchResult fleet =
        BatchMachine(prog, target, 100, 1, xfer).run(inputs);
    EXPECT_EQ(fleet.rank, 3u);
    EXPECT_EQ(fleet.transferCycles,
              xfer.batchCycles(hostTransferBytes(prog),
                               inputs.size()));
    EXPECT_GT(fleet.transferCycles, 0u);
    EXPECT_EQ(fleet.wallCycles, base.wallCycles);
    EXPECT_EQ(fleet.totalWallCycles(),
              fleet.wallCycles + fleet.transferCycles);

    // Per-input results are identical to the rank-less dispatch.
    ASSERT_EQ(fleet.runs.size(), base.runs.size());
    for (size_t i = 0; i < base.runs.size(); ++i)
        EXPECT_EQ(fleet.runs[i].outputs, base.runs[i].outputs);
}

TEST(Fleet, EvaluatorTiersAgreeOnTransfer)
{
    const CompiledProgram &prog = testProgram();
    auto inputs = testInputs(1, 53);
    HostTransferModel xfer =
        HostTransferModel::fromGbps(1.5, 300e6, 250.0);

    SimOptions opts;
    opts.transfer = xfer;
    SimStats measured = Machine(prog, opts).run(inputs[0]).stats;

    for (EvalFidelity f :
         {EvalFidelity::Table, EvalFidelity::Analytic}) {
        Evaluator ev(f);
        SimStats est = ev.estimate(prog, xfer);
        EXPECT_EQ(est.cycles, measured.cycles) << fidelityName(f);
        EXPECT_EQ(est.transferCycles, measured.transferCycles)
            << fidelityName(f);

        // run() honors SimOptions::transfer at every tier.
        SimStats run_stats = ev.run(prog, inputs[0], opts);
        EXPECT_EQ(run_stats.transferCycles, measured.transferCycles)
            << fidelityName(f);
    }
    SimStats cycle_run =
        Evaluator(EvalFidelity::Cycle).run(prog, inputs[0], opts);
    EXPECT_EQ(cycle_run.transferCycles, measured.transferCycles);

    // Batch dispatch: the static batchTotalCycles matches the
    // cycle-accurate BatchMachine exactly, for several shapes.
    for (uint64_t runs : {1u, 3u, 6u}) {
        for (uint32_t cores : {1u, 2u, 4u}) {
            auto batch_inputs = testInputs(runs, 1000 + runs);
            BatchResult br =
                BatchMachine(prog, RankSet{0, CoreSet::firstN(cores)},
                             100, 1, xfer)
                    .run(batch_inputs);
            EXPECT_EQ(Evaluator::batchTransferCycles(prog, runs, xfer),
                      br.transferCycles);
            EXPECT_EQ(Evaluator::batchTotalCycles(prog, runs, cores,
                                                  xfer),
                      br.totalWallCycles());
            for (EvalFidelity f :
                 {EvalFidelity::Table, EvalFidelity::Analytic}) {
                SimStats est = Evaluator(f).estimateBatch(
                    prog, runs, cores, xfer);
                EXPECT_EQ(est.cycles, br.wallCycles);
                EXPECT_EQ(est.transferCycles, br.transferCycles);
            }
        }
    }
}

TEST(Fleet, FleetSimDeterministicAndConserving)
{
    FleetSimOptions opts;
    opts.topology.ranks = 4;
    opts.topology.coresPerRank = 4;
    opts.transfer = HostTransferModel::fromGbps(4.0, 300e6, 100.0);
    opts.requests = 20000;
    opts.seed = 9;

    std::vector<FleetWorkloadModel> mix = {
        {400, 256, 1.0}, {900, 512, 0.5}};

    FleetSimReport a = simulateFleet(opts, mix);
    FleetSimReport b = simulateFleet(opts, mix);

    // Pure function of (options, mix): byte-identical reports.
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.horizonCycles, b.horizonCycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.transferCycles, b.transferCycles);
    EXPECT_EQ(a.p99Cycles, b.p99Cycles);
    ASSERT_EQ(a.perRank.size(), b.perRank.size());
    for (size_t r = 0; r < a.perRank.size(); ++r) {
        EXPECT_EQ(a.perRank[r].requests, b.perRank[r].requests);
        EXPECT_EQ(a.perRank[r].transferCycles,
                  b.perRank[r].transferCycles);
        EXPECT_EQ(a.perRank[r].p99Cycles, b.perRank[r].p99Cycles);
    }

    // Conservation: every request lands on exactly one rank.
    ASSERT_EQ(a.perRank.size(), 4u);
    uint64_t requests = 0, batches = 0, compute = 0, transfer = 0;
    for (const FleetRankReport &rs : a.perRank) {
        requests += rs.requests;
        batches += rs.batches;
        compute += rs.computeCycles;
        transfer += rs.transferCycles;
        EXPECT_GT(rs.requests, 0u); // replicate spreads the load
        EXPECT_GT(rs.utilization, 0.0);
        EXPECT_GT(rs.transferOverhead, 0.0);
    }
    EXPECT_EQ(requests, opts.requests);
    EXPECT_EQ(a.requests, opts.requests);
    EXPECT_EQ(batches, a.batches);
    EXPECT_EQ(compute, a.computeCycles);
    EXPECT_EQ(transfer, a.transferCycles);
    EXPECT_GT(a.transferOverhead, 0.0);
    EXPECT_GT(a.meanBatch, 1.0);
    EXPECT_GT(a.p99Cycles, 0.0);
    EXPECT_GE(a.p99Cycles, a.p50Cycles);
}

TEST(Fleet, FleetSimFreeLinkChargesNothing)
{
    FleetSimOptions opts;
    opts.topology.ranks = 2;
    opts.requests = 5000;
    FleetSimReport rep =
        simulateFleet(opts, {{500, 4096, 1.0}});
    EXPECT_EQ(rep.transferCycles, 0u);
    EXPECT_DOUBLE_EQ(rep.transferOverhead, 0.0);
    for (const FleetRankReport &rs : rep.perRank)
        EXPECT_EQ(rs.transferCycles, 0u);
}

TEST(Fleet, FleetSimAffinityPinsToHomeRanks)
{
    FleetSimOptions opts;
    opts.topology.ranks = 2;
    opts.placement = Placement::Affinity;
    opts.requests = 4000;

    // One workload, two ranks: affinity pins everything to rank 0.
    FleetSimReport one = simulateFleet(opts, {{300, 128, 1.0}});
    EXPECT_EQ(one.perRank[0].requests, opts.requests);
    EXPECT_EQ(one.perRank[1].requests, 0u);

    // Two workloads: workload w lives on rank w % 2, so both ranks
    // see traffic.
    FleetSimReport two =
        simulateFleet(opts, {{300, 128, 1.0}, {600, 128, 1.0}});
    EXPECT_GT(two.perRank[0].requests, 0u);
    EXPECT_GT(two.perRank[1].requests, 0u);
}

TEST(Fleet, AsyncServerMultiRankMatchesSerialReplay)
{
    const CompiledProgram &prog = testProgram();
    auto inputs = testInputs(8, 67);
    std::vector<SimResult> reference;
    for (const auto &in : inputs)
        reference.push_back(Machine(prog).run(in));

    AsyncServerConfig cfg;
    cfg.cores = 2;
    cfg.ranks = 3;
    cfg.workers = 4;
    cfg.maxBatch = 4;
    cfg.transfer = HostTransferModel::fromGbps(2.0, 300e6, 200.0);
    AsyncBatchServer server(cfg);

    // One replicated (hot) program and one pinned (cold) one.
    auto hot = server.addProgram(prog);
    QosSpec cold_qos;
    cold_qos.placement = Placement::Affinity;
    auto cold = server.addProgram(prog, cold_qos);

    std::vector<std::future<SimResult>> futures;
    for (int round = 0; round < 6; ++round)
        for (size_t i = 0; i < inputs.size(); ++i)
            futures.push_back(server.submit(
                (round + i) % 2 ? cold : hot, inputs[i]));
    server.drain();

    for (size_t k = 0; k < futures.size(); ++k) {
        SimResult r = futures[k].get();
        const SimResult &ref = reference[k % inputs.size()];
        EXPECT_EQ(r.outputs, ref.outputs) << "request " << k;
        EXPECT_EQ(r.stats.cycles, ref.stats.cycles);
        // Per-request results carry no fleet accounting.
        EXPECT_EQ(r.stats.transferCycles, 0u);
    }

    auto st = server.stats();
    ASSERT_EQ(st.perRank.size(), 3u);
    uint64_t rank_batches = 0, rank_requests = 0, rank_transfer = 0;
    for (const auto &rs : st.perRank) {
        rank_batches += rs.batches;
        rank_requests += rs.requests;
        rank_transfer += rs.transferCycles;
    }
    EXPECT_EQ(rank_batches, st.batches);
    EXPECT_EQ(rank_requests, st.requests);
    EXPECT_EQ(rank_transfer, st.transferCycles);
    EXPECT_GT(st.transferCycles, 0u);
    for (const auto &rec : st.completionOrder)
        EXPECT_LT(rec.rank, 3u);
}

TEST(Fleet, AsyncServerSingleRankDefaultsUnchanged)
{
    const CompiledProgram &prog = testProgram();
    auto inputs = testInputs(4, 71);

    AsyncServerConfig cfg;
    cfg.cores = 2;
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);
    std::vector<std::future<SimResult>> futures;
    for (const auto &in : inputs)
        futures.push_back(server.submit(h, in));
    server.drain();
    for (auto &f : futures)
        (void)f.get();

    auto st = server.stats();
    EXPECT_EQ(st.transferCycles, 0u);
    ASSERT_EQ(st.perRank.size(), 1u);
    EXPECT_EQ(st.perRank[0].batches, st.batches);
    EXPECT_EQ(st.perRank[0].requests, st.requests);
    EXPECT_EQ(st.perRank[0].wallCycles, st.modeledWallCycles);
    EXPECT_EQ(st.perRank[0].transferCycles, 0u);
}

TEST(Fleet, DseFleetAxesScaleThroughputNotLatency)
{
    auto suite = smallSuite();
    suite.resize(1);
    ArchConfig cfg = smallConfig();

    DsePoint base = evaluateDesign(cfg, suite, 0.05, 1);
    ASSERT_TRUE(base.feasible);
    EXPECT_EQ(base.fleetRanks, 1u);
    EXPECT_DOUBLE_EQ(base.transferPerOpNs, 0.0);

    // Free transfer, 4 ranks: per-op latency and energy unchanged,
    // throughput and wall power exactly 4x.
    DsePoint fleet = evaluateDesign(cfg, suite, 0.05, 1, 1, nullptr,
                                    nullptr, nullptr, 4);
    ASSERT_TRUE(fleet.feasible);
    EXPECT_EQ(fleet.fleetRanks, 4u);
    EXPECT_DOUBLE_EQ(fleet.latencyPerOpNs, base.latencyPerOpNs);
    EXPECT_DOUBLE_EQ(fleet.energyPerOpPj, base.energyPerOpPj);
    EXPECT_DOUBLE_EQ(fleet.throughputGops, 4.0 * base.throughputGops);
    EXPECT_DOUBLE_EQ(fleet.powerWatts, 4.0 * base.powerWatts);
    EXPECT_DOUBLE_EQ(fleet.transferPerOpNs, 0.0);

    // A finite link stretches latency and reports its share.
    HostTransferModel xfer =
        HostTransferModel::fromGbps(0.5, 300e6, 1000.0);
    DsePoint slow = evaluateDesign(cfg, suite, 0.05, 1, 1, nullptr,
                                   nullptr, nullptr, 1, xfer);
    ASSERT_TRUE(slow.feasible);
    EXPECT_GT(slow.latencyPerOpNs, base.latencyPerOpNs);
    EXPECT_GT(slow.transferPerOpNs, 0.0);
    EXPECT_LE(slow.transferPerOpNs, slow.latencyPerOpNs);

    // Transfer-inclusive latency is exact at every tier: the fast
    // tiers agree with the cycle-accurate point to the last bit.
    for (EvalFidelity f :
         {EvalFidelity::Table, EvalFidelity::Analytic}) {
        Evaluator ev(f);
        DsePoint fast = evaluateDesign(cfg, suite, 0.05, 1, 1,
                                       nullptr, nullptr, &ev, 1,
                                       xfer);
        ASSERT_TRUE(fast.feasible);
        EXPECT_DOUBLE_EQ(fast.latencyPerOpNs, slow.latencyPerOpNs)
            << fidelityName(f);
        EXPECT_DOUBLE_EQ(fast.transferPerOpNs, slow.transferPerOpNs)
            << fidelityName(f);
    }
}

} // namespace
} // namespace dpu
