/**
 * @file
 * Tests for partition-parallel compilation: the compiled program must
 * be byte-identical for every --threads value (and across repeated
 * runs), partitioned compiles must stay functionally correct, and the
 * partitioner edge cases feeding the parallel pipeline must hold.
 */

#include <gtest/gtest.h>

#include "arch/isa.hh"
#include "compiler/compiler.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

std::vector<double>
randomInputs(const Dag &d, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(d.numInputs());
    for (auto &x : v)
        x = 0.5 + rng.uniform();
    return v;
}

/** Full byte/field equality of two compiled programs. */
void
expectIdentical(const CompiledProgram &a, const CompiledProgram &b)
{
    ASSERT_EQ(a.instructions.size(), b.instructions.size());
    EXPECT_EQ(encodeProgram(a.cfg, a.instructions),
              encodeProgram(b.cfg, b.instructions));
    EXPECT_EQ(a.numRows, b.numRows);
    EXPECT_EQ(a.inputLocation, b.inputLocation);
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i) {
        EXPECT_EQ(a.outputs[i].node, b.outputs[i].node);
        EXPECT_EQ(a.outputs[i].row, b.outputs[i].row);
        EXPECT_EQ(a.outputs[i].col, b.outputs[i].col);
    }
    EXPECT_EQ(a.stats.instructions, b.stats.instructions);
    EXPECT_EQ(a.stats.programBits, b.stats.programBits);
    EXPECT_EQ(a.stats.bankConflicts, b.stats.bankConflicts);
    EXPECT_EQ(a.stats.spillStores, b.stats.spillStores);
    EXPECT_EQ(a.stats.nops, b.stats.nops);
}

TEST(ParallelCompile, ByteIdenticalAcrossThreadCounts)
{
    Dag d = generateRandomDag(64, 3000, 47);
    ArchConfig cfg = cfgOf(3, 16, 64);
    CompileOptions opt;
    opt.partitionNodes = 500;
    opt.validate = true;

    opt.threads = 1;
    auto reference = compile(d, cfg, opt);
    for (uint32_t threads : {2u, 3u, 8u}) {
        opt.threads = threads;
        auto parallel = compile(d, cfg, opt);
        expectIdentical(reference, parallel);
    }
    // And the parallel result still computes the right thing.
    runAndCheck(reference, d, randomInputs(d, 48));
}

TEST(ParallelCompile, RepeatedRunsIdentical)
{
    Dag d = generateRandomDag(32, 1500, 53);
    ArchConfig cfg = cfgOf(2, 8, 64);
    CompileOptions opt;
    opt.partitionNodes = 300;
    opt.threads = 4;
    auto a = compile(d, cfg, opt);
    auto b = compile(d, cfg, opt);
    expectIdentical(a, b);
}

TEST(ParallelCompile, UnpartitionedIgnoresThreadCount)
{
    Dag d = generateRandomDag(24, 800, 59);
    ArchConfig cfg = cfgOf(3, 16, 32);
    CompileOptions seq, par;
    par.threads = 8;
    expectIdentical(compile(d, cfg, seq), compile(d, cfg, par));
}

TEST(ParallelCompile, WorkloadTwinPartitionedDeterminism)
{
    // A structured Table I twin through the same guarantee, at a
    // partition count large enough to exercise cross-range flow.
    PcParams p;
    p.targetOperations = 12000;
    p.depth = 40;
    p.seed = 61;
    Dag d = generatePc(p);
    ArchConfig cfg = minEdpConfig();
    CompileOptions opt;
    opt.partitionNodes = 1000;
    opt.threads = 1;
    auto seq = compile(d, cfg, opt);
    opt.threads = 6;
    auto par = compile(d, cfg, opt);
    expectIdentical(seq, par);
    auto res = runAndCheck(par, d, randomInputs(d, 62));
    EXPECT_FALSE(res.outputs.empty());
}

TEST(ParallelCompile, InputOnlyTailPartitionCompiles)
{
    // Split lands exactly on the last compute node; the trailing
    // inputs must fold into the final partition and keep bank owners.
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId prev = d.addNode(OpType::Add, {a, b});
    for (int i = 0; i < 9; ++i)
        prev = d.addNode(OpType::Mul, {prev, a});
    // Input-only tail, one of them a sink.
    NodeId tail = d.addInput();
    d.addNode(OpType::Add, {prev, tail});
    d.addInput(); // unread input sink

    ArchConfig cfg = cfgOf(2, 8, 16);
    CompileOptions opt;
    opt.partitionNodes = 11; // exactly the compute-node count
    opt.validate = true;
    for (uint32_t threads : {1u, 4u}) {
        opt.threads = threads;
        auto prog = compile(d, cfg, opt);
        runAndCheck(prog, d, randomInputs(d, 63));
    }
}

TEST(ParallelCompile, PipelinedStages34ByteIdenticalAcrossThreads)
{
    // Steps 3-4 (reorder + finalize) run pipelined against codegen on
    // partitioned compiles; the merged program must stay
    // byte-identical at every thread count with all three verifier
    // stages clean.
    Dag d = generateRandomDag(64, 4000, 91);
    ArchConfig cfg = cfgOf(3, 16, 64);
    CompileOptions opt;
    opt.partitionNodes = 600;
    opt.validate = true;
    opt.verify = true;

    opt.threads = 1;
    auto reference = compile(d, cfg, opt);
    for (uint32_t threads : {4u, 8u}) {
        opt.threads = threads;
        auto parallel = compile(d, cfg, opt);
        expectIdentical(reference, parallel);
    }
    runAndCheck(reference, d, randomInputs(d, 92));
}

TEST(ParallelCompile, BoundaryAwareMapperReducesMergedConflicts)
{
    // Boundary-oblivious mapping (each range blind to its
    // predecessors' bank occupancy) is the pre-boundary-aware
    // baseline; the default chained mapping must beat it on a
    // partitioned workload with heavy cross-range flow.
    Dag d = generateRandomDag(64, 4000, 91);
    ArchConfig cfg = cfgOf(3, 16, 64);
    CompileOptions obliv;
    obliv.partitionNodes = 600;
    obliv.boundaryAwareBanks = false;
    CompileOptions aware = obliv;
    aware.boundaryAwareBanks = true;
    auto a = compile(d, cfg, obliv);
    auto b = compile(d, cfg, aware);
    // Pinned baseline: the boundary-oblivious conflict count for this
    // workload. If a mapper change shifts it, re-pin deliberately.
    EXPECT_EQ(a.stats.bankConflicts, 1033u);
    EXPECT_LT(b.stats.bankConflicts, a.stats.bankConflicts);
    // Fewer conflicts means fewer conflict-resolving copies, so the
    // aware program must not be longer.
    EXPECT_LE(b.stats.instructions, a.stats.instructions);
    runAndCheck(b, d, randomInputs(d, 93));
}

TEST(ParallelCompile, CompileStatsStillConsistent)
{
    Dag d = generateRandomDag(48, 2000, 67);
    ArchConfig cfg = cfgOf(3, 16, 32);
    CompileOptions opt;
    opt.partitionNodes = 400;
    opt.threads = 4;
    auto prog = compile(d, cfg, opt);
    uint64_t total = 0;
    for (uint64_t k : prog.stats.kindCount)
        total += k;
    EXPECT_EQ(total, prog.stats.instructions);
    EXPECT_EQ(prog.stats.instructions, prog.instructions.size());
    EXPECT_EQ(prog.stats.numOperations, 2000u);
    EXPECT_GT(prog.stats.blocks, 0u);
    EXPECT_EQ(prog.stats.cacheHits, 0u);
}

} // namespace
} // namespace dpu
