/**
 * @file
 * Tests for the compiler driver: step 4 spilling, statistics, program
 * footprint, and end-to-end compilation of structured workloads.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "dag/algorithms.hh"
#include "dag/binarize.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

std::vector<double>
randomInputs(const Dag &d, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(d.numInputs());
    for (auto &x : v)
        x = 0.5 + rng.uniform();
    return v;
}

TEST(Compiler, TinyDagCompilesAndRuns)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId c = d.addInput();
    NodeId s1 = d.addNode(OpType::Add, {a, b});
    NodeId s2 = d.addNode(OpType::Add, {b, c});
    d.addNode(OpType::Mul, {s1, s2});

    ArchConfig cfg = cfgOf(2, 8, 16);
    CompileOptions opt;
    opt.validate = true;
    auto prog = compile(d, cfg, opt);
    EXPECT_GT(prog.instructions.size(), 0u);
    EXPECT_EQ(prog.stats.numOperations, 3u);

    auto res = runAndCheck(prog, d, {1.0, 2.0, 4.0});
    ASSERT_EQ(res.outputs.size(), 1u);
    EXPECT_DOUBLE_EQ(res.outputs[0], 18.0);
}

TEST(Compiler, MultiInputNodesAreBinarized)
{
    Dag d;
    std::vector<NodeId> ins;
    for (int i = 0; i < 6; ++i)
        ins.push_back(d.addInput());
    d.addNode(OpType::Add, {ins});
    ArchConfig cfg = cfgOf(3, 8, 16);
    CompileOptions opt;
    opt.validate = true;
    auto prog = compile(d, cfg, opt);
    auto inputs = randomInputs(d, 40);
    runAndCheck(prog, d, inputs);
    EXPECT_EQ(prog.stats.numOperations, 5u); // 6-input add -> 5 nodes
}

TEST(Compiler, SpillingKicksInForTinyRegisterFile)
{
    Dag d = generateRandomDag(32, 1200, 41);
    ArchConfig big = cfgOf(2, 8, 128);
    ArchConfig tiny = cfgOf(2, 8, 8);
    CompileOptions opt;
    opt.validate = true;
    auto prog_big = compile(d, big, opt);
    auto prog_tiny = compile(d, tiny, opt);
    EXPECT_EQ(prog_big.stats.spillStores, 0u);
    EXPECT_GT(prog_tiny.stats.spillStores, 0u);
    EXPECT_GT(prog_tiny.stats.reloads, 0u);
    // And both still compute the right thing.
    auto inputs = randomInputs(d, 42);
    runAndCheck(prog_big, d, inputs);
    runAndCheck(prog_tiny, d, inputs);
}

TEST(Compiler, SpillingCostsCycles)
{
    Dag d = generateRandomDag(32, 1200, 43);
    auto a = compile(d, cfgOf(2, 8, 128));
    auto b = compile(d, cfgOf(2, 8, 8));
    EXPECT_GT(b.stats.cycles, a.stats.cycles);
}

TEST(Compiler, StatsAreConsistent)
{
    Dag d = generateRandomDag(24, 900, 44);
    auto prog = compile(d, cfgOf(3, 16, 32));
    const auto &s = prog.stats;
    uint64_t total = 0;
    for (uint64_t k : s.kindCount)
        total += k;
    EXPECT_EQ(total, s.instructions);
    EXPECT_EQ(s.instructions, prog.instructions.size());
    EXPECT_EQ(s.cycles, s.instructions + prog.cfg.pipelineStages());
    EXPECT_GT(s.kindCount[static_cast<size_t>(InstrKind::Exec)], 0u);
    EXPECT_GT(s.kindCount[static_cast<size_t>(InstrKind::Load)], 0u);
    EXPECT_GT(s.programBits, 0u);
    EXPECT_EQ(s.numOperations, 900u);
}

TEST(Compiler, AutomaticWritePolicyShrinksPrograms)
{
    // §III-B: ~30% program-size reduction on average. Insist on >10%.
    PcParams p;
    p.targetOperations = 3000;
    p.depth = 24;
    p.seed = 45;
    Dag d = generatePc(p);
    auto prog = compile(d, cfgOf(3, 16, 32));
    EXPECT_LT(prog.stats.programBits,
              prog.stats.programBitsExplicitWrites * 0.9)
        << "auto " << prog.stats.programBits << " explicit "
        << prog.stats.programBitsExplicitWrites;
}

TEST(Compiler, FootprintBeatsCsrForPc)
{
    // §IV-E: instructions + data beat the CSR representation.
    PcParams p;
    p.targetOperations = 4000;
    p.depth = 30;
    p.seed = 46;
    Dag d = generatePc(p);
    auto prog = compile(d, minEdpConfig());
    EXPECT_LT(prog.stats.programBits + prog.stats.dataBits,
              prog.stats.csrBits * 1.3)
        << "program " << prog.stats.programBits << " + data "
        << prog.stats.dataBits << " vs CSR " << prog.stats.csrBits;
}

TEST(Compiler, PartitionedCompileMatchesUnpartitioned)
{
    Dag d = generateRandomDag(64, 3000, 47);
    ArchConfig cfg = cfgOf(3, 16, 64);
    CompileOptions part;
    part.partitionNodes = 500;
    part.validate = true;
    auto prog = compile(d, cfg, part);
    auto inputs = randomInputs(d, 48);
    runAndCheck(prog, d, inputs);
}

TEST(Compiler, SptrsvEndToEnd)
{
    LowerTriangularParams p;
    p.dim = 200;
    p.depthLevels = 20;
    p.avgOffDiagonal = 3.0;
    p.seed = 49;
    auto m = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(m);

    ArchConfig cfg = minEdpConfig();
    CompileOptions opt;
    opt.validate = true;
    auto prog = compile(lowered.dag, cfg, opt);

    Rng rng(50);
    std::vector<double> b(m.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;
    auto inputs = sptrsvInputValues(lowered, m, b);
    runAndCheck(prog, lowered.dag, inputs);
}

TEST(Compiler, DeterministicForFixedSeed)
{
    Dag d = generateRandomDag(16, 500, 51);
    ArchConfig cfg = cfgOf(3, 16, 32);
    CompileOptions opt;
    opt.seed = 7;
    auto a = compile(d, cfg, opt);
    auto b = compile(d, cfg, opt);
    EXPECT_EQ(a.instructions.size(), b.instructions.size());
    EXPECT_EQ(a.stats.programBits, b.stats.programBits);
    EXPECT_EQ(encodeProgram(cfg, a.instructions),
              encodeProgram(cfg, b.instructions));
}

TEST(Compiler, EncodedProgramDecodesToSameInstructions)
{
    Dag d = generateRandomDag(16, 300, 52);
    ArchConfig cfg = cfgOf(2, 16, 32);
    auto prog = compile(d, cfg);
    auto image = encodeProgram(cfg, prog.instructions);
    auto back = decodeProgram(cfg, image, prog.instructions.size());
    ASSERT_EQ(back.size(), prog.instructions.size());
    for (size_t i = 0; i < back.size(); ++i)
        EXPECT_EQ(back[i], prog.instructions[i]) << "instr " << i;
}

TEST(Compiler, RegisterFileTooSmallFails)
{
    Dag d = generateRandomDag(64, 2000, 53);
    ArchConfig cfg = cfgOf(3, 8, 2);
    EXPECT_THROW(compile(d, cfg), FatalError);
}

} // namespace
} // namespace dpu
