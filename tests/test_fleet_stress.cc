/**
 * @file
 * Seeded randomized stress suite for the fleet-aware serving layer:
 * the test_async_stress determinism property extended over the rank
 * dimension. N resident programs (mixed replicate/affinity placement)
 * x M concurrent submitter threads, against servers spanning 1..4
 * ranks with a finite host-transfer model. The pinned property is
 * unchanged from the single-rank suite: every accepted request must
 * resolve to a SimResult byte-identical to a serial single-threaded
 * single-rank Machine replay of the same input — rank placement,
 * host-link charges and worker interleavings are accounting, never
 * results. The suite also runs under ThreadSanitizer in CI, probing
 * the per-rank reservation and placement paths for data races.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <tuple>
#include <vector>

#include "compiler/compiler.hh"
#include "sim/async.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 32;
    return c;
}

struct StressProgram
{
    CompiledProgram prog;
    std::vector<std::vector<double>> inputs;
    std::vector<SimResult> reference;
};

constexpr size_t kPrograms = 3;
constexpr size_t kInputsPerProgram = 4;
constexpr size_t kSubmitters = 4;
constexpr size_t kRequestsPerSubmitter = 10;

const std::vector<StressProgram> &
stressPrograms()
{
    static const std::vector<StressProgram> programs = [] {
        std::vector<StressProgram> out(kPrograms);
        const uint64_t dag_seeds[kPrograms] = {81, 82, 83};
        const uint32_t dag_inputs[kPrograms] = {10, 12, 14};
        const uint32_t dag_nodes[kPrograms] = {200, 320, 260};
        for (size_t p = 0; p < kPrograms; ++p) {
            Dag d = generateRandomDag(dag_inputs[p], dag_nodes[p],
                                      dag_seeds[p]);
            out[p].prog = compile(d, smallConfig());
            Rng rng(2000 + dag_seeds[p]);
            for (size_t k = 0; k < kInputsPerProgram; ++k) {
                std::vector<double> in(d.numInputs());
                for (auto &x : in)
                    x = 0.5 + rng.uniform();
                // The serial single-rank ground truth every served
                // result must match byte for byte.
                out[p].reference.push_back(
                    Machine(out[p].prog).run(in));
                out[p].inputs.push_back(std::move(in));
            }
        }
        return out;
    }();
    return programs;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_EQ(a.outputs[i], b.outputs[i]) << "output " << i;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.kindCount, b.stats.kindCount);
    EXPECT_EQ(a.stats.bankReads, b.stats.bankReads);
    EXPECT_EQ(a.stats.bankWrites, b.stats.bankWrites);
    EXPECT_EQ(a.stats.peOperations, b.stats.peOperations);
    EXPECT_EQ(a.stats.pePassThroughs, b.stats.pePassThroughs);
    EXPECT_EQ(a.stats.crossbarTransfers, b.stats.crossbarTransfers);
    EXPECT_EQ(a.stats.memReads, b.stats.memReads);
    EXPECT_EQ(a.stats.memWrites, b.stats.memWrites);
    EXPECT_EQ(a.stats.instrBitsFetched, b.stats.instrBitsFetched);
    EXPECT_EQ(a.stats.peakLiveRegisters, b.stats.peakLiveRegisters);
    // Fleet accounting never reaches per-request results.
    EXPECT_EQ(a.stats.transferCycles, b.stats.transferCycles);
}

/** (seed, workers, ranks, placement) sweep. */
class FleetStress
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, uint32_t, Placement>>
{
};

TEST_P(FleetStress, ServedResultsMatchSerialReplay)
{
    const uint64_t seed = std::get<0>(GetParam());
    const uint32_t workers = std::get<1>(GetParam());
    const uint32_t ranks = std::get<2>(GetParam());
    const Placement placement = std::get<3>(GetParam());
    const auto &population = stressPrograms();

    Rng shape_rng(seed);
    AsyncServerConfig cfg;
    cfg.cores = 2 + shape_rng.next() % 3;
    cfg.ranks = ranks;
    cfg.placement = placement;
    cfg.workers = workers;
    cfg.maxBatch = 1 + shape_rng.next() % 6;
    const uint64_t window_us[] = {0, 100, 2000};
    cfg.batchWindow =
        std::chrono::microseconds(window_us[shape_rng.next() % 3]);
    cfg.hostThreadsPerBatch = 1 + shape_rng.next() % 2;
    // A finite link with a per-dispatch cost: the accounting under
    // test is never free in this suite.
    cfg.transfer = HostTransferModel::fromGbps(
        1.0 + (double)(shape_rng.next() % 8), 300e6, 100.0);
    AsyncBatchServer server(cfg);

    std::vector<AsyncBatchServer::ProgramHandle> handles;
    for (size_t p = 0; p < population.size(); ++p) {
        QosSpec qos;
        // Mixed placement: program 1 always opposes the server-wide
        // policy, so replicated and pinned programs coexist.
        if (p == 1)
            qos.placement = placement == Placement::Replicate
                ? Placement::Affinity
                : Placement::Replicate;
        handles.push_back(
            server.addProgram(population[p].prog, qos));
    }

    struct Submitted
    {
        size_t program;
        size_t input;
        std::future<SimResult> future;
    };
    std::vector<std::vector<Submitted>> per_thread(kSubmitters);

    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            Rng rng(seed * 1000 + t);
            for (size_t k = 0; k < kRequestsPerSubmitter; ++k) {
                size_t p = rng.next() % population.size();
                size_t i = rng.next() % kInputsPerProgram;
                per_thread[t].push_back(
                    {p, i,
                     server.submit(handles[p],
                                   population[p].inputs[i])});
                if (rng.next() % 4 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(rng.next() % 200));
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    server.drain();

    size_t served = 0;
    for (auto &thread_reqs : per_thread) {
        for (Submitted &s : thread_reqs) {
            SCOPED_TRACE("program " + std::to_string(s.program) +
                         " input " + std::to_string(s.input));
            expectIdentical(
                s.future.get(),
                population[s.program].reference[s.input]);
            ++served;
        }
    }
    EXPECT_EQ(served, kSubmitters * kRequestsPerSubmitter);

    // The rank accounting must conserve what the server served.
    auto st = server.stats();
    EXPECT_EQ(st.requests, served);
    ASSERT_EQ(st.perRank.size(), ranks);
    uint64_t rank_batches = 0, rank_requests = 0;
    uint64_t rank_wall = 0, rank_transfer = 0;
    for (const auto &rs : st.perRank) {
        rank_batches += rs.batches;
        rank_requests += rs.requests;
        rank_wall += rs.wallCycles;
        rank_transfer += rs.transferCycles;
    }
    EXPECT_EQ(rank_batches, st.batches);
    EXPECT_EQ(rank_requests, st.requests);
    EXPECT_EQ(rank_wall, st.modeledWallCycles);
    EXPECT_EQ(rank_transfer, st.transferCycles);
    EXPECT_GT(st.transferCycles, 0u);
    for (const auto &rec : st.completionOrder)
        EXPECT_LT(rec.rank, ranks);
}

INSTANTIATE_TEST_SUITE_P(
    FleetStressSweep, FleetStress,
    ::testing::Combine(::testing::Values(uint64_t{61}, uint64_t{62}),
                       ::testing::Values(1u, 4u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(Placement::Replicate,
                                         Placement::Affinity)),
    [](const ::testing::TestParamInfo<FleetStress::ParamType> &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               "_workers" + std::to_string(std::get<1>(info.param)) +
               "_ranks" + std::to_string(std::get<2>(info.param)) +
               "_" + placementName(std::get<3>(info.param));
    });

} // namespace
} // namespace dpu
