/**
 * @file
 * Tests for the tiered evaluator (model/evaluator.hh):
 *
 *   - tier-name round trip and strict parsing;
 *   - TableModel serialize/parse byte round trip, strict rejection
 *     of malformed tables, builtin-table sanity;
 *   - static exactness of the fast tiers: cycles, instruction mix,
 *     memory traffic and instruction bits match the cycle-accurate
 *     machine exactly; batch wall cycles match BatchMachine;
 *   - cross-validation: Table/Analytic latency is *exact* and energy
 *     stays within the declared relative-error envelope of Cycle
 *     across the workload suite (the contract evalErrorBounds
 *     declares and README documents);
 *   - the refinement interval-domination predicates and survivor
 *     selection (model/dse.hh) on hand-built point sets.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "model/dse.hh"
#include "model/evaluator.hh"
#include "sim/batch.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

std::vector<double>
randomInputs(const Dag &d, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(d.numInputs());
    for (auto &x : v)
        x = 0.5 + rng.uniform();
    return v;
}

ArchConfig
config(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

DsePoint
pointOf(double latency, double energy, double area)
{
    DsePoint p;
    p.latencyPerOpNs = latency;
    p.energyPerOpPj = energy;
    p.areaMm2 = area;
    return p;
}

// ---------------------------------------------------------------- //
// Names and envelopes.                                             //
// ---------------------------------------------------------------- //

TEST(Fidelity, NameRoundTrip)
{
    for (size_t i = 0; i < kNumFidelities; ++i) {
        EvalFidelity f = static_cast<EvalFidelity>(i);
        EvalFidelity back = EvalFidelity::Cycle;
        ASSERT_TRUE(parseFidelityName(fidelityName(f), back));
        EXPECT_EQ(back, f);
    }
}

TEST(Fidelity, ParseIsStrict)
{
    EvalFidelity f = EvalFidelity::Cycle;
    EXPECT_FALSE(parseFidelityName("", f));
    EXPECT_FALSE(parseFidelityName("Cycle", f));   // case-sensitive
    EXPECT_FALSE(parseFidelityName("cycles", f));  // no prefixes
    EXPECT_FALSE(parseFidelityName("tab", f));
    EXPECT_FALSE(parseFidelityName("exact", f));
    EXPECT_FALSE(parseFidelityName(nullptr, f));
}

TEST(Fidelity, DeclaredEnvelopes)
{
    // Latency is exact by construction at every tier; Cycle is ground
    // truth; the Table model must be declared at least as tight as
    // the uncalibrated Analytic tier.
    for (size_t i = 0; i < kNumFidelities; ++i)
        EXPECT_EQ(evalErrorBounds(static_cast<EvalFidelity>(i))
                      .latencyRel,
                  0.0);
    EXPECT_EQ(evalErrorBounds(EvalFidelity::Cycle).energyRel, 0.0);
    EXPECT_GT(evalErrorBounds(EvalFidelity::Table).energyRel, 0.0);
    EXPECT_LE(evalErrorBounds(EvalFidelity::Table).energyRel,
              evalErrorBounds(EvalFidelity::Analytic).energyRel);
}

// ---------------------------------------------------------------- //
// TableModel serialization.                                        //
// ---------------------------------------------------------------- //

TEST(TableModel, BuiltinIsFitted)
{
    TableModel m = TableModel::builtin();
    ASSERT_FALSE(m.empty());
    for (const TableBucket &b : m.buckets()) {
        EXPECT_GE(b.depth, 1u);
        EXPECT_GE(b.banks, 8u);
        EXPECT_GT(b.samples, 0u);
        // pe_ops is statically exact (the driver *is* the counter),
        // so every fitted bucket must carry rate 1.
        EXPECT_DOUBLE_EQ(
            b.rate(static_cast<size_t>(EvalEvent::PeOperations)), 1.0);
    }
}

TEST(TableModel, SerializeParseRoundTripsBytes)
{
    TableModel m = TableModel::builtin();
    std::string text = m.serialize();
    TableModel back;
    std::string error;
    ASSERT_TRUE(TableModel::parse(text, back, &error)) << error;
    EXPECT_EQ(back.serialize(), text);
    EXPECT_EQ(back.size(), m.size());
}

TEST(TableModel, FittedModelRoundTrips)
{
    // A freshly fitted model (not the builtin constants) must also
    // survive serialize -> parse -> serialize byte-identically.
    TableModel m;
    const WorkloadSpec &spec = findWorkload("nltcs");
    for (uint32_t depth : {1u, 2u}) {
        ArchConfig cfg = config(depth, 8, 64);
        Dag dag;
        CompiledProgram prog =
            compileWorkload(spec, 0.4, cfg, CompileOptions{}, nullptr,
                            &dag);
        SimStats measured =
            Machine(prog).run(randomInputs(dag, 3)).stats;
        m.addCalibration(cfg, prog.stats, measured);
    }
    ASSERT_EQ(m.size(), 2u);
    TableModel back;
    ASSERT_TRUE(TableModel::parse(m.serialize(), back, nullptr));
    EXPECT_EQ(back.serialize(), m.serialize());
}

TEST(TableModel, ParseRejectsMalformedTables)
{
    TableModel out;
    std::string error;
    EXPECT_FALSE(TableModel::parse("", out, &error));
    EXPECT_FALSE(TableModel::parse("{\"eval_table\": 2}\n", out,
                                   &error));
    // Header bucket count must match the body.
    EXPECT_FALSE(
        TableModel::parse("{\"eval_table\": 1, \"buckets\": 2}\n"
                          "{\"depth\": 1, \"banks\": 8, \"samples\": "
                          "1, \"pe_ops\": 1, \"pe_pass\": 0, \"xbar\": "
                          "1, \"bank_reads\": 1, \"bank_writes\": 1}\n",
                          out, &error));
    // Torn tail line.
    std::string good = TableModel::builtin().serialize();
    EXPECT_FALSE(TableModel::parse(
        good.substr(0, good.size() - 10), out, &error));
}

TEST(TableModel, EmptyTableFallsBackToAnalytic)
{
    TableModel empty;
    EvalRates r = empty.ratesFor(config(2, 16, 64));
    EvalRates a = analyticRates();
    for (size_t e = 0; e < kNumEvalEvents; ++e)
        EXPECT_DOUBLE_EQ(r[e], a[e]);
}

TEST(TableModel, RatesInterpolateInBanks)
{
    TableModel m = TableModel::builtin();
    // Between two fitted banks columns the rate must lie between the
    // bracketing cells (linear in log2(banks)); outside, clamp.
    size_t xbar = static_cast<size_t>(EvalEvent::CrossbarTransfers);
    double at8 = m.ratesFor(config(2, 8, 64))[xbar];
    double at16 = m.ratesFor(config(2, 16, 64))[xbar];
    double mid = m.ratesFor(config(2, 8, 64))[xbar]; // exact cell
    EXPECT_GT(at8, 0.0);
    EXPECT_GT(at16, 0.0);
    EXPECT_DOUBLE_EQ(mid, at8);
    double lo = std::min(at8, at16), hi = std::max(at8, at16);
    // banks = 8 and 16 are adjacent fitted columns; any banks value
    // between them interpolates; 2 clamps to the 8-column.
    double clamped = m.ratesFor(config(2, 2, 64))[xbar];
    EXPECT_DOUBLE_EQ(clamped, at8);
    double beyond = m.ratesFor(config(2, 1024, 64))[xbar];
    double at32 = m.ratesFor(config(2, 32, 64))[xbar];
    EXPECT_DOUBLE_EQ(beyond, at32);
    (void)lo;
    (void)hi;
}

// ---------------------------------------------------------------- //
// Static exactness of the fast tiers.                              //
// ---------------------------------------------------------------- //

TEST(Evaluator, EstimateMatchesMachineExactly)
{
    const WorkloadSpec &spec = findWorkload("msnbc");
    ArchConfig cfg = config(2, 16, 64);
    Dag dag;
    CompiledProgram prog = compileWorkload(spec, 0.3, cfg,
                                           CompileOptions{}, nullptr,
                                           &dag);
    SimStats sim = Machine(prog).run(randomInputs(dag, 11)).stats;

    for (EvalFidelity f :
         {EvalFidelity::Table, EvalFidelity::Analytic}) {
        Evaluator ev(f);
        SimStats est = ev.estimate(prog);
        // The statically exact fields must match the machine bit for
        // bit — this is what makes fast-tier latency exact.
        EXPECT_EQ(est.cycles, sim.cycles) << fidelityName(f);
        EXPECT_EQ(est.kindCount, sim.kindCount);
        EXPECT_EQ(est.memReads, sim.memReads);
        EXPECT_EQ(est.memWrites, sim.memWrites);
        EXPECT_EQ(est.instrBitsFetched, sim.instrBitsFetched);
        // The five estimated counters must be in the right ballpark
        // (nonzero whenever the real counter is).
        EXPECT_GT(est.peOperations, 0u);
        EXPECT_GT(est.bankReads, 0u);
        EXPECT_GT(est.bankWrites, 0u);
    }
}

TEST(Evaluator, CycleTierWrapsMachineRun)
{
    const WorkloadSpec &spec = findWorkload("nltcs");
    ArchConfig cfg = config(1, 8, 64);
    Dag dag;
    CompiledProgram prog = compileWorkload(spec, 0.5, cfg,
                                           CompileOptions{}, nullptr,
                                           &dag);
    std::vector<double> inputs = randomInputs(dag, 5);
    SimStats direct = Machine(prog).run(inputs).stats;
    SimStats wrapped = Evaluator(EvalFidelity::Cycle).run(prog, inputs);
    EXPECT_EQ(wrapped.cycles, direct.cycles);
    EXPECT_EQ(wrapped.peOperations, direct.peOperations);
    EXPECT_EQ(wrapped.bankReads, direct.bankReads);
    EXPECT_EQ(wrapped.bankWrites, direct.bankWrites);
    EXPECT_EQ(wrapped.crossbarTransfers, direct.crossbarTransfers);
}

TEST(Evaluator, CycleTierHasNoStaticEstimate)
{
    const WorkloadSpec &spec = findWorkload("nltcs");
    Dag dag;
    CompiledProgram prog = compileWorkload(spec, 0.3, config(1, 8, 64),
                                           CompileOptions{}, nullptr,
                                           &dag);
    EXPECT_THROW(Evaluator(EvalFidelity::Cycle).estimate(prog),
                 FatalError);
}

TEST(Evaluator, BatchWallCyclesMatchesBatchMachine)
{
    const WorkloadSpec &spec = findWorkload("nltcs");
    Dag dag;
    CompiledProgram prog = compileWorkload(spec, 0.3, config(1, 8, 64),
                                           CompileOptions{}, nullptr,
                                           &dag);
    for (uint32_t cores : {1u, 2u, 3u}) {
        std::vector<std::vector<double>> inputs;
        for (uint64_t k = 0; k < 5; ++k)
            inputs.push_back(randomInputs(dag, 20 + k));
        BatchResult br =
            BatchMachine(prog, cores, /*operations=*/1).run(inputs);
        EXPECT_EQ(Evaluator::batchWallCycles(prog, inputs.size(),
                                             cores),
                  br.wallCycles)
            << cores << " cores";
    }
    EXPECT_EQ(Evaluator::batchWallCycles(prog, 0, 4), 0u);
    EXPECT_THROW(Evaluator::batchWallCycles(prog, 1, 0), FatalError);
}

TEST(Evaluator, EstimateBatchScalesCounters)
{
    const WorkloadSpec &spec = findWorkload("nltcs");
    Dag dag;
    CompiledProgram prog = compileWorkload(spec, 0.3, config(2, 8, 64),
                                           CompileOptions{}, nullptr,
                                           &dag);
    Evaluator ev(EvalFidelity::Analytic);
    SimStats one = ev.estimate(prog);
    SimStats batch = ev.estimateBatch(prog, 6, 2);
    EXPECT_EQ(batch.cycles, 3 * one.cycles); // ceil(6/2) lockstep rounds
    EXPECT_EQ(batch.peOperations, 6 * one.peOperations);
    EXPECT_EQ(batch.bankReads, 6 * one.bankReads);
    EXPECT_EQ(batch.instrBitsFetched, 6 * one.instrBitsFetched);
}

// ---------------------------------------------------------------- //
// Cross-validation against Cycle over the workload suite.          //
// ---------------------------------------------------------------- //

TEST(CrossValidation, FastTiersHonorDeclaredEnvelopes)
{
    // Suite-averaged DSE metrics per design point — the quantity the
    // envelopes are declared over (and the one refinement relies on).
    const std::vector<WorkloadSpec> suite = smallSuite();
    const double scale = 0.03;
    const Evaluator table(EvalFidelity::Table);
    const Evaluator analytic(EvalFidelity::Analytic);

    for (const ArchConfig &cfg :
         {config(1, 8, 64), config(2, 16, 32), config(3, 32, 64),
          config(2, 64, 32)}) {
        DsePoint cyc =
            evaluateDesign(cfg, suite, scale, 1, 1, nullptr);
        ASSERT_TRUE(cyc.feasible) << cfg.label();
        for (const Evaluator *ev : {&table, &analytic}) {
            DsePoint fast = evaluateDesign(cfg, suite, scale, 1, 1,
                                           nullptr, nullptr, ev);
            EvalErrorBounds bounds = evalErrorBounds(ev->fidelity());
            ASSERT_TRUE(fast.feasible);
            EXPECT_EQ(fast.fidelity, ev->fidelity());
            // Latency: exact, not just within an envelope.
            EXPECT_DOUBLE_EQ(fast.latencyPerOpNs, cyc.latencyPerOpNs)
                << cfg.label() << " " << fidelityName(ev->fidelity());
            EXPECT_DOUBLE_EQ(fast.areaMm2, cyc.areaMm2);
            double energy_err =
                std::abs(fast.energyPerOpPj - cyc.energyPerOpPj) /
                cyc.energyPerOpPj;
            EXPECT_LE(energy_err, bounds.energyRel)
                << cfg.label() << " " << fidelityName(ev->fidelity());
        }
    }
}

// ---------------------------------------------------------------- //
// Refinement interval domination (model/dse.hh).                   //
// ---------------------------------------------------------------- //

TEST(RefineDomination, CertainImpliesMaybe)
{
    DsePoint a = pointOf(1.0, 10.0, 1.0);
    DsePoint b = pointOf(2.0, 20.0, 1.5);
    for (double err : {0.0, 0.05, 0.2}) {
        if (dseCertainlyDominates(a, b, err)) {
            EXPECT_TRUE(dseMaybeDominates(a, b, err));
        }
    }
    EXPECT_TRUE(dseCertainlyDominates(a, b, 0.1));
    EXPECT_FALSE(dseCertainlyDominates(b, a, 0.1));
    EXPECT_FALSE(dseMaybeDominates(b, a, 0.1)); // worse lat and area
}

TEST(RefineDomination, CloseEnergiesAreUncertain)
{
    // Same latency and area, energies 5% apart: a 10% error bound
    // cannot decide the pair in either direction.
    DsePoint a = pointOf(1.0, 10.0, 1.0);
    DsePoint b = pointOf(1.0, 10.5, 1.0);
    EXPECT_TRUE(dseMaybeDominates(a, b, 0.10));
    EXPECT_TRUE(dseMaybeDominates(b, a, 0.10));
    EXPECT_FALSE(dseCertainlyDominates(a, b, 0.10));
    EXPECT_FALSE(dseCertainlyDominates(b, a, 0.10));
    // With err = 0 the intervals collapse and a dominates for sure.
    EXPECT_TRUE(dseCertainlyDominates(a, b, 0.0));
    EXPECT_FALSE(dseMaybeDominates(b, a, 0.0));
}

TEST(RefineDomination, ExactTieNeverDominates)
{
    DsePoint a = pointOf(1.0, 10.0, 1.0);
    DsePoint b = pointOf(1.0, 10.0, 1.0);
    EXPECT_FALSE(dseCertainlyDominates(a, b, 0.0));
    EXPECT_FALSE(dseMaybeDominates(a, b, 0.0));
    // With error, a *could* strictly dominate b — uncertain pair.
    EXPECT_TRUE(dseMaybeDominates(a, b, 0.05));
    EXPECT_FALSE(dseCertainlyDominates(a, b, 0.05));
}

TEST(RefineDomination, InfeasibleNeverParticipates)
{
    DsePoint a = pointOf(1.0, 10.0, 1.0);
    DsePoint bad = pointOf(9.0, 99.0, 9.0);
    bad.feasible = false;
    EXPECT_FALSE(dseMaybeDominates(a, bad, 0.1));
    EXPECT_FALSE(dseMaybeDominates(bad, a, 0.1));
    EXPECT_FALSE(dseCertainlyDominates(a, bad, 0.1));
}

TEST(RefineSurvivors, WellSeparatedPointsNeedNoCycleEvals)
{
    // Latency/area incomparable points (the typical DSE trade-off
    // curve): every membership decision is certain from the exact
    // metrics alone, so the survivor set is empty.
    std::vector<DsePoint> pts = {
        pointOf(4.0, 10.0, 1.0),
        pointOf(2.0, 12.0, 1.3),
        pointOf(1.0, 15.0, 1.8),
    };
    EXPECT_TRUE(dseRefineSurvivors(pts, 0.10).empty());
}

TEST(RefineSurvivors, UncertainPairContaminatesBothEnds)
{
    std::vector<DsePoint> pts = {
        pointOf(1.0, 10.0, 1.0), // close pair, comparable lat/area
        pointOf(1.5, 10.2, 1.0),
        pointOf(0.5, 30.0, 2.0), // far away on its own curve
    };
    std::vector<size_t> s = dseRefineSurvivors(pts, 0.10);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], 0u);
    EXPECT_EQ(s[1], 1u);
}

TEST(RefineSurvivors, CertainDominationEliminatesWithoutCycleEvals)
{
    std::vector<DsePoint> pts = {
        pointOf(1.0, 10.0, 1.0),
        pointOf(1.5, 20.0, 1.0), // dominated by >2x the envelope
    };
    EXPECT_TRUE(dseRefineSurvivors(pts, 0.10).empty());
}

// ---------------------------------------------------------------- //
// Refined sweep reproduces the cycle-accurate frontier.            //
// ---------------------------------------------------------------- //

TEST(RefineSweep, FrontierMatchesCycleSweepAtReducedCost)
{
    // The --quick grid of tools/dse_sweep: 8 points at scale 0.05
    // over the default (small) suite. This is the grid the ISSUE's
    // >=5x acceptance criterion is stated on.
    DseSweepOptions base;
    base.space.depths = {1, 2};
    base.space.banks = {8, 16};
    base.space.regs = {16, 32};
    base.space.workloadScale = 0.05;

    DseSweepOptions cycle = base;
    DseSweepResult full = runDseSweep(cycle);

    for (EvalFidelity f :
         {EvalFidelity::Table, EvalFidelity::Analytic}) {
        DseSweepOptions refined = base;
        refined.fidelity = f;
        refined.refine = true;
        DseSweepResult r = runDseSweep(refined);
        ASSERT_EQ(r.points.size(), full.points.size());

        // Identical frontier membership — the refinement contract.
        EXPECT_EQ(paretoFrontier(r.points),
                  paretoFrontier(full.points))
            << fidelityName(f);

        // And at the promised cost: at least a 5x reduction in
        // cycle-evaluated points vs the full cycle sweep.
        EXPECT_LE(5 * r.cycleEvaluatedPoints, full.points.size())
            << fidelityName(f);
        EXPECT_EQ(r.fastEvaluatedPoints, full.points.size());
        EXPECT_EQ(r.refineSurvivors, r.cycleEvaluatedPoints);

        // Survivors carry cycle-exact values; the rest keep their
        // fast fidelity tag.
        size_t cycle_tagged = 0;
        for (const DsePoint &p : r.points)
            cycle_tagged += p.fidelity == EvalFidelity::Cycle;
        EXPECT_EQ(cycle_tagged, r.refineSurvivors);
    }
}

TEST(RefineSweep, CycleFidelityRefusesToRefine)
{
    DseSweepOptions opt;
    opt.refine = true; // fidelity defaults to Cycle
    opt.space.depths = {1};
    opt.space.banks = {8};
    opt.space.regs = {32};
    EXPECT_THROW(runDseSweep(opt), FatalError);
}

} // namespace
} // namespace dpu
