/**
 * @file
 * Unit tests for the architecture template: config geometry,
 * interconnect topologies, and the variable-length ISA.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/config.hh"
#include "arch/interconnect.hh"
#include "arch/isa.hh"

namespace dpu {
namespace {

TEST(ArchConfig, DerivedParameters)
{
    ArchConfig c = minEdpConfig();
    c.check();
    EXPECT_EQ(c.trees(), 8u);       // 64 / 2^3
    EXPECT_EQ(c.pesPerTree(), 7u);  // 2^3 - 1
    EXPECT_EQ(c.numPes(), 56u);
    EXPECT_EQ(c.portsPerTree(), 8u);
    EXPECT_EQ(c.pipelineStages(), 4u);
    EXPECT_EQ(c.label(), "D3.B64.R32");
}

TEST(ArchConfig, RejectsNonPowerOfTwoBanks)
{
    ArchConfig c;
    c.banks = 48;
    EXPECT_THROW(c.check(), PanicError);
}

TEST(ArchConfig, RejectsTooFewBanks)
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 4;
    EXPECT_THROW(c.check(), PanicError);
}

TEST(ArchConfig, PeIdRoundTrip)
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 32;
    c.check();
    for (uint32_t id = 0; id < c.numPes(); ++id) {
        PeCoord coord = c.peCoord(id);
        EXPECT_EQ(c.peId(coord), id);
    }
}

TEST(ArchConfig, LayerSizes)
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 8; // single tree
    c.check();
    EXPECT_EQ(c.pesInLayer(1), 4u);
    EXPECT_EQ(c.pesInLayer(2), 2u);
    EXPECT_EQ(c.pesInLayer(3), 1u);
}

TEST(Interconnect, CrossbarReachesEverything)
{
    ArchConfig c = minEdpConfig();
    c.outputNet = OutputInterconnect::Crossbar;
    for (uint32_t pe : {0u, 5u, c.numPes() - 1})
        EXPECT_EQ(writableBanks(c, pe).size(), c.banks);
    EXPECT_EQ(writingPes(c, 0).size(), c.numPes());
    EXPECT_EQ(maxWritersPerBank(c), c.numPes());
}

TEST(Interconnect, PerLayerSubtreeSpans)
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 16; // two trees
    c.outputNet = OutputInterconnect::PerLayerSubtree;
    c.check();
    // Leaf PE 0 of tree 0 covers ports 0..1.
    auto leaf = writableBanks(c, c.peId({0, 1, 0}));
    EXPECT_EQ(leaf, (std::vector<uint32_t>{0, 1}));
    // Root of tree 1 covers all 8 ports of tree 1.
    auto root = writableBanks(c, c.peId({1, 3, 0}));
    ASSERT_EQ(root.size(), 8u);
    EXPECT_EQ(root.front(), 8u);
    EXPECT_EQ(root.back(), 15u);
    // Each bank sees exactly one PE per layer: the D:1 mux.
    for (uint32_t b = 0; b < c.banks; ++b) {
        auto pes = writingPes(c, b);
        EXPECT_EQ(pes.size(), c.depth);
        std::set<uint32_t> layers;
        for (uint32_t p : pes)
            layers.insert(c.peCoord(p).layer);
        EXPECT_EQ(layers.size(), c.depth);
    }
    EXPECT_EQ(maxWritersPerBank(c), c.depth);
}

TEST(Interconnect, PerLayerInverseConsistent)
{
    for (uint32_t depth : {1u, 2u, 3u}) {
        ArchConfig c;
        c.depth = depth;
        c.banks = 32;
        c.outputNet = OutputInterconnect::PerLayerSubtree;
        c.check();
        for (uint32_t pe = 0; pe < c.numPes(); ++pe)
            for (uint32_t b : writableBanks(c, pe)) {
                auto pes = writingPes(c, b);
                EXPECT_NE(std::find(pes.begin(), pes.end(), pe),
                          pes.end())
                    << "pe " << pe << " bank " << b;
            }
    }
}

TEST(Interconnect, OnePerPeIsNearlyOneToOne)
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 8; // one tree
    c.outputNet = OutputInterconnect::OnePerPe;
    c.check();
    // 7 PEs map to 7 distinct banks; the root gets a second bank.
    std::set<uint32_t> used;
    for (uint32_t pe = 0; pe < c.numPes(); ++pe) {
        auto banks = writableBanks(c, pe);
        bool is_root = c.peCoord(pe).layer == c.depth;
        EXPECT_EQ(banks.size(), is_root ? 2u : 1u);
        used.insert(banks.begin(), banks.end());
    }
    EXPECT_EQ(used.size(), 8u);
}

TEST(Interconnect, OutputSelectIdentifiesPe)
{
    ArchConfig c = minEdpConfig();
    for (uint32_t b = 0; b < c.banks; ++b) {
        auto pes = writingPes(c, b);
        for (uint32_t i = 0; i < pes.size(); ++i)
            EXPECT_EQ(outputSelectFor(c, b, pes[i]), i);
    }
    EXPECT_THROW(outputSelectFor(c, 0, c.peId({1, 1, 0})), PanicError);
}

/** The paper's example lengths: D=3, B=16, R=32 (fig. 7(a)). */
TEST(Isa, PaperExampleLengths)
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 16;
    c.regsPerBank = 32;
    c.outputNet = OutputInterconnect::PerLayerSubtree;
    c.check();
    IsaLayout lay(c);
    EXPECT_EQ(lay.lengthBits(InstrKind::Nop), 4u);
    EXPECT_EQ(lay.lengthBits(InstrKind::Load), 52u);
    EXPECT_EQ(lay.lengthBits(InstrKind::Store), 132u);
    EXPECT_EQ(lay.lengthBits(InstrKind::Store4), 56u);
    EXPECT_EQ(lay.lengthBits(InstrKind::Copy4), 72u);
    // Paper: 272. Our encoding reaches 268 (see isa.cc field widths).
    EXPECT_EQ(lay.lengthBits(InstrKind::Exec), 268u);
    EXPECT_EQ(lay.maxLengthBits(), lay.lengthBits(InstrKind::Exec));
}

TEST(Isa, LengthsGrowWithBanks)
{
    ArchConfig small = minEdpConfig();
    ArchConfig big = minEdpConfig();
    big.banks = 128;
    IsaLayout a(small), b(big);
    EXPECT_LT(a.lengthBits(InstrKind::Exec), b.lengthBits(InstrKind::Exec));
    EXPECT_LT(a.lengthBits(InstrKind::Load), b.lengthBits(InstrKind::Load));
}

Instruction
sampleExec(const ArchConfig &c)
{
    ExecInstr e;
    e.peOp.assign(c.numPes(), PeOp::Nop);
    e.peOp[0] = PeOp::Add;
    e.peOp[1] = PeOp::Mul;
    e.inputSel.assign(c.banks, 0);
    e.readAddr.assign(c.banks, 0);
    e.validRst.assign(c.banks, false);
    e.writeEnable.assign(c.banks, false);
    e.outputSel.assign(c.banks, 0);
    e.inputSel[0] = 3;
    e.readAddr[3] = 7;
    e.validRst[3] = true;
    e.writeEnable[1] = true;
    e.outputSel[1] = 1;
    return e;
}

TEST(Isa, EncodeDecodeRoundTrip)
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 16;
    c.regsPerBank = 32;
    c.check();

    std::vector<Instruction> prog;
    prog.push_back(NopInstr{});

    LoadInstr ld;
    ld.memRow = 12345;
    ld.enable.assign(c.banks, false);
    ld.enable[2] = ld.enable[9] = true;
    prog.push_back(ld);

    StoreInstr st;
    st.memRow = 77;
    st.enable.assign(c.banks, false);
    st.readAddr.assign(c.banks, 0);
    st.enable[5] = true;
    st.readAddr[5] = 31;
    prog.push_back(st);

    Store4Instr s4;
    s4.memRow = 9;
    s4.slots[0] = {true, 3, 11};
    s4.slots[1] = {true, 8, 1};
    prog.push_back(s4);

    Copy4Instr cp;
    cp.slots[0] = {true, 1, 5, 2};
    cp.slots[1] = {true, 7, 0, 3};
    cp.validRst.assign(c.banks, false);
    cp.validRst[1] = true;
    prog.push_back(cp);

    prog.push_back(sampleExec(c));

    auto image = encodeProgram(c, prog);
    auto back = decodeProgram(c, image, prog.size());
    ASSERT_EQ(back.size(), prog.size());
    for (size_t i = 0; i < prog.size(); ++i)
        EXPECT_EQ(back[i], prog[i]) << "instruction " << i;
}

TEST(Isa, PackedImageSizeMatchesSum)
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 16;
    c.regsPerBank = 32;
    c.check();
    std::vector<Instruction> prog{NopInstr{}, NopInstr{}, sampleExec(c)};
    uint64_t bits = programSizeBits(c, prog);
    auto image = encodeProgram(c, prog);
    EXPECT_EQ(image.size(), (bits + 7) / 8);
}

TEST(Isa, KindNames)
{
    EXPECT_STREQ(kindName(InstrKind::Exec), "exec");
    EXPECT_STREQ(kindName(InstrKind::Copy4), "copy_4");
    EXPECT_EQ(kindOf(Instruction{NopInstr{}}), InstrKind::Nop);
}

} // namespace
} // namespace dpu
