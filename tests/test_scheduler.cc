/**
 * @file
 * Unit tests for compilation step 3: pipeline-aware reordering.
 */

#include <gtest/gtest.h>

#include "compiler/blocks.hh"
#include "compiler/codegen.hh"
#include "compiler/mapper.hh"
#include "compiler/scheduler.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = 64;
    return c;
}

IrProgram
irFor(const Dag &d, const ArchConfig &cfg)
{
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec);
    return generateIr(d, cfg, dec, ba);
}

TEST(Scheduler, ChainNeedsNops)
{
    // A pure dependency chain cannot hide any latency: expect nops.
    Dag d;
    NodeId prev = d.addInput();
    NodeId other = d.addInput();
    for (int i = 0; i < 12; ++i)
        prev = d.addNode(OpType::Add, {prev, other});
    ArchConfig cfg = cfgOf(3, 8);
    IrProgram ir = irFor(d, cfg);
    auto stats = reorderForPipeline(ir, cfg);
    checkHazardFree(ir, cfg);
    EXPECT_GT(stats.nopsInserted, 0u);
}

TEST(Scheduler, WideDagNeedsFewNops)
{
    // Thousands of independent two-level reductions: the scheduler
    // should hide nearly all hazards.
    Dag d;
    Rng rng(31);
    std::vector<NodeId> ins;
    for (int i = 0; i < 64; ++i)
        ins.push_back(d.addInput());
    for (int i = 0; i < 500; ++i) {
        NodeId a = d.addNode(OpType::Add,
                             {rng.pick(ins), rng.pick(ins)});
        d.addNode(OpType::Mul, {a, rng.pick(ins)});
    }
    ArchConfig cfg = cfgOf(3, 16);
    IrProgram ir = irFor(d, cfg);
    size_t before = ir.instrs.size();
    auto stats = reorderForPipeline(ir, cfg);
    checkHazardFree(ir, cfg);
    EXPECT_LT(stats.nopsInserted, before / 10);
}

TEST(Scheduler, HazardCheckerCatchesRawViolation)
{
    // Hand-build an IR with a back-to-back producer/consumer.
    IrProgram ir;
    ArchConfig cfg = cfgOf(1, 2);
    ir.instances.push_back({0, 0, 0});
    IrInstr load;
    load.kind = InstrKind::Load;
    load.writes.push_back({0});
    IrInstr store;
    store.kind = InstrKind::Store;
    store.memRow = 1;
    store.reads.push_back({0, true});
    ir.instrs.push_back(load);
    ir.instrs.push_back(store); // violates the 2-cycle load latency
    EXPECT_THROW(checkHazardFree(ir, cfg), PanicError);
}

TEST(Scheduler, HazardCheckerAcceptsPaddedVersion)
{
    IrProgram ir;
    ArchConfig cfg = cfgOf(1, 2);
    ir.instances.push_back({0, 0, 0});
    IrInstr load;
    load.kind = InstrKind::Load;
    load.writes.push_back({0});
    IrInstr store;
    store.kind = InstrKind::Store;
    store.memRow = 1;
    store.reads.push_back({0, true});
    ir.instrs.push_back(load);
    ir.instrs.push_back(IrInstr{}); // nop
    ir.instrs.push_back(store);
    EXPECT_NO_THROW(checkHazardFree(ir, cfg));
}

TEST(Scheduler, PreservesInstructionMultiset)
{
    Dag d = generateRandomDag(16, 400, 33);
    ArchConfig cfg = cfgOf(2, 16);
    IrProgram ir = irFor(d, cfg);
    std::array<size_t, 6> before{};
    for (const auto &in : ir.instrs)
        ++before[static_cast<size_t>(in.kind)];
    reorderForPipeline(ir, cfg);
    std::array<size_t, 6> after{};
    for (const auto &in : ir.instrs)
        ++after[static_cast<size_t>(in.kind)];
    // Only nops may be added.
    for (size_t k = 0; k < 6; ++k) {
        if (k == static_cast<size_t>(InstrKind::Nop))
            EXPECT_GE(after[k], before[k]);
        else
            EXPECT_EQ(after[k], before[k]) << "kind " << k;
    }
}

TEST(Scheduler, TightWindowInsertsMoreNops)
{
    Dag d = generateRandomDag(16, 800, 34);
    ArchConfig cfg = cfgOf(3, 16);
    IrProgram a = irFor(d, cfg);
    IrProgram b = irFor(d, cfg);
    auto wide = reorderForPipeline(a, cfg, 300);
    auto tight = reorderForPipeline(b, cfg, 1);
    checkHazardFree(a, cfg);
    checkHazardFree(b, cfg);
    EXPECT_LE(wide.nopsInserted, tight.nopsInserted);
}

TEST(Scheduler, RawIrFromCodegenHasNoUseBeforeDef)
{
    // generateIr emits in block order: no read-before-write even
    // before scheduling (only latencies are violated).
    Dag d = generateRandomDag(12, 300, 35);
    ArchConfig cfg = cfgOf(2, 8);
    IrProgram ir = irFor(d, cfg);
    std::vector<bool> written(ir.instances.size(), false);
    for (const auto &in : ir.instrs) {
        for (const auto &r : in.reads)
            EXPECT_TRUE(written[r.inst]);
        for (const auto &w : in.writes)
            written[w.inst] = true;
    }
}

} // namespace
} // namespace dpu
