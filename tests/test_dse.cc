/**
 * @file
 * Unit and property tests for the sharded DSE engine (model/dse.hh):
 *
 *   - paretoFrontier() properties on randomized point clouds
 *     (mutual non-domination, coverage, optima-on-frontier);
 *   - the kDseNpos sentinel for empty / all-infeasible sweeps (the
 *     min-index scans used to assert instead of reporting);
 *   - deterministic grid expansion and shard planning;
 *   - the checkpoint-journal JSON-lines format, pinned by a golden
 *     sample and a round-trip parse (mirroring test_harness_json.cc's
 *     pinned report sample).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "model/dse.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

// ---------------------------------------------------------------- //
// Helpers.                                                         //
// ---------------------------------------------------------------- //

DsePoint
pointOf(double latency, double energy, double area,
        bool feasible = true)
{
    DsePoint p;
    p.latencyPerOpNs = latency;
    p.energyPerOpPj = energy;
    p.edpPjNs = latency * energy;
    p.areaMm2 = area;
    p.feasible = feasible;
    return p;
}

/** Byte-for-byte point equality (exact doubles — the determinism
 *  contract, not an approximation). */
void
expectIdentical(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.cfg.depth, b.cfg.depth);
    EXPECT_EQ(a.cfg.banks, b.cfg.banks);
    EXPECT_EQ(a.cfg.regsPerBank, b.cfg.regsPerBank);
    EXPECT_EQ(a.workloadScale, b.workloadScale);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.latencyPerOpNs, b.latencyPerOpNs);
    EXPECT_EQ(a.energyPerOpPj, b.energyPerOpPj);
    EXPECT_EQ(a.edpPjNs, b.edpPjNs);
    EXPECT_EQ(a.areaMm2, b.areaMm2);
    EXPECT_EQ(a.powerWatts, b.powerWatts);
    EXPECT_EQ(a.throughputGops, b.throughputGops);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.fidelity, b.fidelity);
    EXPECT_EQ(a.fleetRanks, b.fleetRanks);
    EXPECT_EQ(a.transferPerOpNs, b.transferPerOpNs);
}

std::vector<DsePoint>
randomCloud(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<DsePoint> cloud;
    for (size_t i = 0; i < n; ++i) {
        DsePoint p = pointOf(0.5 + 4.0 * rng.uniform(),
                             20.0 + 200.0 * rng.uniform(),
                             0.5 + 4.0 * rng.uniform());
        p.feasible = rng.next() % 6 != 0; // ~1/6 infeasible
        cloud.push_back(p);
    }
    return cloud;
}

bool
contains(const std::vector<size_t> &v, size_t x)
{
    for (size_t e : v)
        if (e == x)
            return true;
    return false;
}

// ---------------------------------------------------------------- //
// Pareto frontier properties.                                      //
// ---------------------------------------------------------------- //

TEST(Pareto, FrontierPointsAreMutuallyNonDominated)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        auto cloud = randomCloud(seed, 48);
        auto frontier = paretoFrontier(cloud);
        for (size_t a : frontier) {
            EXPECT_TRUE(cloud[a].feasible);
            for (size_t b : frontier)
                EXPECT_FALSE(dseDominates(cloud[a], cloud[b]))
                    << "seed " << seed << ": frontier point " << a
                    << " dominates frontier point " << b;
        }
    }
}

TEST(Pareto, EveryNonFrontierPointIsDominatedByAFrontierPoint)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        auto cloud = randomCloud(seed, 48);
        auto frontier = paretoFrontier(cloud);
        for (size_t i = 0; i < cloud.size(); ++i) {
            if (!cloud[i].feasible || contains(frontier, i))
                continue;
            bool dominated = false;
            for (size_t f : frontier)
                dominated |= dseDominates(cloud[f], cloud[i]);
            EXPECT_TRUE(dominated)
                << "seed " << seed << ": off-frontier point " << i
                << " is not dominated by any frontier point";
        }
    }
}

TEST(Pareto, OptimaAlwaysLieOnTheFrontier)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        auto cloud = randomCloud(seed, 64);
        auto frontier = paretoFrontier(cloud);
        for (size_t idx : {minEdpIndex(cloud), minEnergyIndex(cloud),
                           minLatencyIndex(cloud)}) {
            ASSERT_NE(idx, kDseNpos);
            EXPECT_TRUE(contains(frontier, idx))
                << "seed " << seed << ": optimum " << idx
                << " is off the frontier";
        }
    }
}

TEST(Pareto, DuplicatePointsAllStayOnTheFrontier)
{
    // Identical points do not dominate each other (no strict
    // improvement), so ties must survive — and the tie-broken min
    // scans must still land on the frontier.
    std::vector<DsePoint> cloud = {
        pointOf(1.0, 50.0, 2.0), pointOf(1.0, 50.0, 2.0),
        pointOf(2.0, 40.0, 2.0), pointOf(2.0, 60.0, 3.0),
        pointOf(1.0, 50.0, 1.5), // dominates the first two by area
    };
    auto frontier = paretoFrontier(cloud);
    EXPECT_FALSE(contains(frontier, 0));
    EXPECT_FALSE(contains(frontier, 1));
    EXPECT_TRUE(contains(frontier, 2));
    EXPECT_TRUE(contains(frontier, 4));
    EXPECT_EQ(minLatencyIndex(cloud), 4u); // tie-break by area
    EXPECT_TRUE(contains(frontier, minLatencyIndex(cloud)));
    EXPECT_TRUE(contains(frontier, minEnergyIndex(cloud)));
    EXPECT_TRUE(contains(frontier, minEdpIndex(cloud)));
}

TEST(Pareto, SinglePointAndEmptyInputs)
{
    std::vector<DsePoint> one = {pointOf(1.0, 2.0, 3.0)};
    EXPECT_EQ(paretoFrontier(one), std::vector<size_t>{0});
    EXPECT_EQ(paretoFrontier({}), std::vector<size_t>{});
}

TEST(Pareto, DominationIgnoresInfeasiblePoints)
{
    DsePoint good = pointOf(1.0, 1.0, 1.0);
    DsePoint bad = pointOf(9.0, 9.0, 9.0, /*feasible=*/false);
    EXPECT_FALSE(dseDominates(good, bad));
    EXPECT_FALSE(dseDominates(bad, good));
    auto frontier = paretoFrontier({bad, good});
    EXPECT_EQ(frontier, std::vector<size_t>{1});
}

// ---------------------------------------------------------------- //
// kDseNpos sentinel (regression: all-infeasible sweeps used to trip //
// an assertion in the min-index scans).                            //
// ---------------------------------------------------------------- //

TEST(DseNpos, EmptyPointVectorReturnsNpos)
{
    std::vector<DsePoint> none;
    EXPECT_EQ(minEdpIndex(none), kDseNpos);
    EXPECT_EQ(minEnergyIndex(none), kDseNpos);
    EXPECT_EQ(minLatencyIndex(none), kDseNpos);
    EXPECT_TRUE(paretoFrontier(none).empty());
}

TEST(DseNpos, AllInfeasibleReturnsNpos)
{
    std::vector<DsePoint> cloud = {
        pointOf(1.0, 2.0, 3.0, false),
        pointOf(4.0, 5.0, 6.0, false),
    };
    EXPECT_EQ(minEdpIndex(cloud), kDseNpos);
    EXPECT_EQ(minEnergyIndex(cloud), kDseNpos);
    EXPECT_EQ(minLatencyIndex(cloud), kDseNpos);
    EXPECT_TRUE(paretoFrontier(cloud).empty());
}

TEST(DseNpos, AllInfeasibleSweepEndToEnd)
{
    // The real thing: a register file no workload fits. The sweep
    // marks every point infeasible and the scans report kDseNpos
    // instead of asserting.
    DseOptions o;
    o.depths = {3};
    o.banks = {8};
    o.regs = {2};
    o.workloadScale = 0.05;
    auto pts = exploreDesignSpace(o);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_FALSE(pts[0].feasible);
    EXPECT_EQ(minEdpIndex(pts), kDseNpos);
    EXPECT_EQ(minEnergyIndex(pts), kDseNpos);
    EXPECT_EQ(minLatencyIndex(pts), kDseNpos);
    EXPECT_TRUE(paretoFrontier(pts).empty());
}

// ---------------------------------------------------------------- //
// Grid expansion + shard planning.                                 //
// ---------------------------------------------------------------- //

TEST(DseGrid, DefaultGridHas48PointsInGridOrder)
{
    auto grid = expandDseGrid({});
    ASSERT_EQ(grid.size(), 48u);
    EXPECT_EQ(grid.front().cfg.label(), "D1.B8.R16");
    EXPECT_EQ(grid.back().cfg.label(), "D3.B64.R128");
    EXPECT_EQ(grid.front().scale, 1.0);
    EXPECT_EQ(grid.front().cores, 1u);
}

TEST(DseGrid, OptionalAxesExpandInnermost)
{
    DseOptions o;
    o.depths = {1};
    o.banks = {8};
    o.regs = {16};
    o.scales = {0.1, 0.2};
    o.cores = {1, 2};
    auto grid = expandDseGrid(o);
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].scale, 0.1);
    EXPECT_EQ(grid[0].cores, 1u);
    EXPECT_EQ(grid[1].scale, 0.1);
    EXPECT_EQ(grid[1].cores, 2u);
    EXPECT_EQ(grid[2].scale, 0.2);
    EXPECT_EQ(grid[2].cores, 1u);
    EXPECT_EQ(grid[3].scale, 0.2);
    EXPECT_EQ(grid[3].cores, 2u);
}

TEST(DseGrid, SkipsBanksSmallerThanOneTree)
{
    DseOptions o;
    o.depths = {3};
    o.banks = {4}; // < 2^3: no full tree
    o.regs = {32};
    EXPECT_TRUE(expandDseGrid(o).empty());
}

TEST(DseGrid, RejectsInvalidAxisValues)
{
    DseOptions bad_banks;
    bad_banks.banks = {12};
    EXPECT_THROW(expandDseGrid(bad_banks), FatalError);

    DseOptions bad_depth;
    bad_depth.depths = {7};
    EXPECT_THROW(expandDseGrid(bad_depth), FatalError);

    DseOptions bad_regs;
    bad_regs.regs = {1};
    EXPECT_THROW(expandDseGrid(bad_regs), FatalError);

    DseOptions bad_scale;
    bad_scale.scales = {-0.5};
    EXPECT_THROW(expandDseGrid(bad_scale), FatalError);

    DseOptions bad_cores;
    bad_cores.cores = {0};
    EXPECT_THROW(expandDseGrid(bad_cores), FatalError);
}

TEST(DseShards, ContiguousNearEqualPartition)
{
    auto plan = planDseShards(10, 3);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].begin, 0u);
    EXPECT_EQ(plan[0].end, 4u);
    EXPECT_EQ(plan[1].begin, 4u);
    EXPECT_EQ(plan[1].end, 7u);
    EXPECT_EQ(plan[2].begin, 7u);
    EXPECT_EQ(plan[2].end, 10u);
}

TEST(DseShards, ClampsToPointCountAndHandlesEdges)
{
    EXPECT_EQ(planDseShards(5, 8).size(), 5u); // never empty shards
    EXPECT_TRUE(planDseShards(0, 4).empty());
    auto one = planDseShards(7, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].begin, 0u);
    EXPECT_EQ(one[0].end, 7u);
    auto zero = planDseShards(7, 0); // treated as 1
    ASSERT_EQ(zero.size(), 1u);
    EXPECT_EQ(zero[0].end, 7u);
}

// ---------------------------------------------------------------- //
// Checkpoint-journal format (golden sample + round trip).          //
// ---------------------------------------------------------------- //

DsePoint
goldenPoint()
{
    DsePoint p;
    p.cfg.depth = 1;
    p.cfg.banks = 8;
    p.cfg.regsPerBank = 16;
    p.workloadScale = 0.25;
    p.cores = 2;
    p.latencyPerOpNs = 1.5;
    p.energyPerOpPj = 2.5;
    p.edpPjNs = 3.75;
    p.areaMm2 = 0.5;
    p.powerWatts = 0.125;
    p.throughputGops = 12.5;
    return p;
}

TEST(DseJournal, GoldenPointLine)
{
    // Pinned sample: any drift in the journal schema is a
    // deliberate, reviewed change (cf. test_harness_json.cc).
    const char *golden =
        "{\"index\": 3, \"design\": \"D1.B8.R16\", \"depth\": 1, "
        "\"banks\": 8, \"regs\": 16, \"scale\": 0.25, \"cores\": 2, "
        "\"feasible\": true, \"latency_per_op_ns\": 1.5, "
        "\"energy_per_op_pj\": 2.5, \"edp_pj_ns\": 3.75, "
        "\"area_mm2\": 0.5, \"power_watts\": 0.125, "
        "\"throughput_gops\": 12.5, \"fidelity\": \"cycle\"}";
    EXPECT_EQ(dseJournalPointLine(3, goldenPoint()), golden);
}

TEST(DseJournal, GoldenInfeasibleLine)
{
    DsePoint p;
    p.cfg.depth = 3;
    p.cfg.banks = 8;
    p.cfg.regsPerBank = 2;
    p.workloadScale = 0.05;
    p.areaMm2 = 1.25;
    p.feasible = false;
    const char *golden =
        "{\"index\": 0, \"design\": \"D3.B8.R2\", \"depth\": 3, "
        "\"banks\": 8, \"regs\": 2, \"scale\": 0.05, \"cores\": 1, "
        "\"feasible\": false, \"latency_per_op_ns\": 0, "
        "\"energy_per_op_pj\": 0, \"edp_pj_ns\": 0, "
        "\"area_mm2\": 1.25, \"power_watts\": 0, "
        "\"throughput_gops\": 0, \"fidelity\": \"cycle\"}";
    EXPECT_EQ(dseJournalPointLine(0, p), golden);
}

TEST(DseJournal, GoldenHeaderLineAndSpaceSignature)
{
    DseOptions o;
    o.depths = {1};
    o.banks = {8};
    o.regs = {16};
    o.scales = {0.25};
    o.cores = {2};
    o.seed = 7;
    o.suite = {pcSuite()[0]};
    EXPECT_EQ(dseSpaceSignature(o),
              "depths=1|banks=8|regs=16|scales=0.25|cores=2|seed=7|"
              "suite=tretail");
    EXPECT_EQ(dseJournalHeaderLine(dseSpaceSignature(o), 1),
              "{\"dse_journal\": 1, \"space\": "
              "\"depths=1|banks=8|regs=16|scales=0.25|cores=2|seed=7|"
              "suite=tretail\", \"points\": 1}");
}

TEST(DseJournal, PointLineRoundTripsExactly)
{
    // Shortest-round-trip double formatting: parse(line(p)) == p
    // bit for bit, and re-serializing gives the identical bytes —
    // what makes the canonical journal deterministic across resumes.
    DsePoint p = goldenPoint();
    p.latencyPerOpNs = 1.0 / 3.0;
    p.energyPerOpPj = 0.1;
    p.edpPjNs = p.latencyPerOpNs * p.energyPerOpPj;
    p.throughputGops = 123456.789012345;

    std::string line = dseJournalPointLine(42, p);
    size_t index = 0;
    DsePoint parsed;
    ASSERT_TRUE(parseDseJournalPointLine(line, index, parsed));
    EXPECT_EQ(index, 42u);
    expectIdentical(parsed, p);
    EXPECT_EQ(dseJournalPointLine(42, parsed), line);
}

TEST(DseJournal, FastTierPointLineRoundTrips)
{
    // Fast-tier points journal their fidelity tag and survive a
    // parse/re-serialize cycle byte for byte, exactly like cycle
    // points.
    for (EvalFidelity f :
         {EvalFidelity::Table, EvalFidelity::Analytic}) {
        DsePoint p = goldenPoint();
        p.fidelity = f;
        std::string line = dseJournalPointLine(7, p);
        EXPECT_NE(line.find(std::string("\"fidelity\": \"") +
                            fidelityName(f) + "\""),
                  std::string::npos);
        size_t index = 0;
        DsePoint parsed;
        ASSERT_TRUE(parseDseJournalPointLine(line, index, parsed));
        EXPECT_EQ(parsed.fidelity, f);
        EXPECT_EQ(dseJournalPointLine(7, parsed), line);
    }
}

TEST(DseJournal, FleetFieldsRoundTrip)
{
    // Fleet axes journal as optional trailing fields, present only
    // when non-default — a ranks=1 zero-transfer point serializes to
    // the exact pre-fleet bytes (pinned by GoldenPointLine above).
    DsePoint base = goldenPoint();
    std::string base_line = dseJournalPointLine(5, base);
    EXPECT_EQ(base_line.find("\"ranks\""), std::string::npos);
    EXPECT_EQ(base_line.find("\"transfer_per_op_ns\""),
              std::string::npos);

    DsePoint p = goldenPoint();
    p.fleetRanks = 8;
    p.transferPerOpNs = 1.0 / 3.0;
    std::string line = dseJournalPointLine(5, p);
    EXPECT_NE(line.find("\"ranks\": 8"), std::string::npos);
    EXPECT_NE(line.find("\"transfer_per_op_ns\": "),
              std::string::npos);

    size_t index = 0;
    DsePoint parsed;
    ASSERT_TRUE(parseDseJournalPointLine(line, index, parsed));
    EXPECT_EQ(index, 5u);
    expectIdentical(parsed, p);
    EXPECT_EQ(dseJournalPointLine(5, parsed), line);

    // A zero-rank count is a torn or foreign line, never a point.
    std::string bad = line;
    size_t at = bad.find("\"ranks\": 8");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 10, "\"ranks\": 0");
    EXPECT_FALSE(parseDseJournalPointLine(bad, index, parsed));
}

TEST(DseJournal, OldFormatLineWithoutFidelityReadsAsCycle)
{
    // Journals written before the tiered evaluator carry no fidelity
    // field. Those lines were produced by Machine::run, so they are
    // cycle-accurate by construction: the parser accepts them and
    // tags them Cycle. Pinned — changing this to a rejection is a
    // deliberate, reviewed format break.
    std::string line = dseJournalPointLine(3, goldenPoint());
    const std::string tail = ", \"fidelity\": \"cycle\"";
    size_t at = line.find(tail);
    ASSERT_NE(at, std::string::npos);
    std::string old_format = line.erase(at, tail.size());

    size_t index = 0;
    DsePoint p;
    ASSERT_TRUE(parseDseJournalPointLine(old_format, index, p));
    EXPECT_EQ(index, 3u);
    EXPECT_EQ(p.fidelity, EvalFidelity::Cycle);
    expectIdentical(p, goldenPoint());
}

TEST(DseJournal, UnknownFidelityNameIsRejected)
{
    // A *present but unrecognized* tier name is a torn or foreign
    // line, not a default: the parser must refuse it so the sweep
    // recomputes that point instead of mislabeling it.
    std::string line = dseJournalPointLine(3, goldenPoint());
    size_t at = line.find("\"cycle\"");
    ASSERT_NE(at, std::string::npos);
    line.replace(at, 7, "\"exact\"");
    size_t index = 0;
    DsePoint p;
    EXPECT_FALSE(parseDseJournalPointLine(line, index, p));
}

TEST(DseJournal, ParserRejectsTornAndForeignLines)
{
    size_t index = 0;
    DsePoint p;
    std::string full = dseJournalPointLine(1, goldenPoint());
    // Every strict prefix is a torn write and must be rejected.
    for (size_t cut : {size_t{0}, size_t{1}, full.size() / 2,
                       full.size() - 1})
        EXPECT_FALSE(parseDseJournalPointLine(full.substr(0, cut),
                                              index, p))
            << "prefix of length " << cut << " parsed";
    EXPECT_FALSE(parseDseJournalPointLine("not json", index, p));
    EXPECT_FALSE(parseDseJournalPointLine("{\"index\": 1}", index, p));
    EXPECT_FALSE(parseDseJournalPointLine(full + "x", index, p));
    EXPECT_TRUE(parseDseJournalPointLine(full, index, p));
}

TEST(DseJournal, LoadSkipsTornTailAndKeepsValidLines)
{
    std::string path = ::testing::TempDir() + "dse_torn.jsonl";
    std::string line0 = dseJournalPointLine(0, goldenPoint());
    std::string line1 = dseJournalPointLine(1, goldenPoint());
    {
        std::ofstream out(path, std::ios::trunc);
        out << dseJournalHeaderLine("sig", 3) << "\n"
            << line0 << "\n"
            << line1 << "\n"
            << line1.substr(0, line1.size() / 2); // torn by a kill
    }
    DseJournal journal;
    ASSERT_TRUE(loadDseJournal(path, journal));
    std::remove(path.c_str());
    EXPECT_EQ(journal.space, "sig");
    EXPECT_EQ(journal.gridPoints, 3u);
    ASSERT_EQ(journal.entries.size(), 2u);
    EXPECT_EQ(journal.entries[0].first, 0u);
    EXPECT_EQ(journal.entries[1].first, 1u);
    expectIdentical(journal.entries[0].second, goldenPoint());
}

TEST(DseJournal, LoadRejectsMissingFileAndBadHeader)
{
    DseJournal journal;
    EXPECT_FALSE(loadDseJournal(
        ::testing::TempDir() + "does_not_exist.jsonl", journal));

    std::string path = ::testing::TempDir() + "dse_badheader.jsonl";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"not_a_journal\": true}\n";
    }
    EXPECT_FALSE(loadDseJournal(path, journal));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
// Sweep-engine surface errors.                                     //
// ---------------------------------------------------------------- //

TEST(DseSweep, ResumeWithoutJournalPathIsFatal)
{
    DseSweepOptions o;
    o.resume = true;
    EXPECT_THROW(runDseSweep(o), FatalError);
}

TEST(DseSweep, ResumeRefusesToOverwriteANonJournalFile)
{
    // A typo'd --journal path pointing at an existing file must be
    // fatal, not a fresh start that clobbers the file. Only a
    // genuinely missing journal starts fresh.
    std::string path = ::testing::TempDir() + "dse_notajournal.json";
    const char *precious = "{\"my\": \"precious data\"}\n";
    {
        std::ofstream out(path, std::ios::trunc);
        out << precious;
    }
    DseSweepOptions o;
    o.space.depths = {1};
    o.space.banks = {8};
    o.space.regs = {32};
    o.space.workloadScale = 0.05;
    o.space.suite = {pcSuite()[0]};
    o.journalPath = path;
    o.resume = true;
    EXPECT_THROW(runDseSweep(o), FatalError);

    std::ifstream in(path);
    std::string kept((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(kept, precious); // untouched
    std::remove(path.c_str());
}

TEST(DseSweep, EvaluateSingleDesignTracksCost)
{
    // The per-shard cache-hit-rate series feeds off DseEvalCost.
    std::vector<WorkloadSpec> suite = {pcSuite()[0]};
    ArchConfig cfg;
    cfg.depth = 1;
    cfg.banks = 8;
    cfg.regsPerBank = 32;

    ProgramCache cache;
    DseEvalCost cold, warm;
    DsePoint a =
        evaluateDesign(cfg, suite, 0.05, 1, 1, &cache, &cold);
    DsePoint b =
        evaluateDesign(cfg, suite, 0.05, 1, 1, &cache, &warm);
    EXPECT_EQ(cold.compiles, 1u);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(warm.compiles, 1u);
    EXPECT_EQ(warm.cacheHits, 1u); // second evaluation hits
    expectIdentical(a, b);         // and a hit cannot change results
    EXPECT_EQ(cache.stats().hitRate(), 0.5);
}

TEST(DseSweep, CoresAxisScalesThroughputAndStaysFeasible)
{
    std::vector<WorkloadSpec> suite = {pcSuite()[0]};
    ArchConfig cfg;
    cfg.depth = 2;
    cfg.banks = 8;
    cfg.regsPerBank = 32;
    DsePoint one = evaluateDesign(cfg, suite, 0.05, 1, 1);
    DsePoint four = evaluateDesign(cfg, suite, 0.05, 1, 4);
    ASSERT_TRUE(one.feasible);
    ASSERT_TRUE(four.feasible);
    // Four cores run a 4-input batch in roughly one program's wall
    // cycles: latency/op (and EDP) must drop, throughput must rise.
    EXPECT_LT(four.latencyPerOpNs, one.latencyPerOpNs);
    EXPECT_GT(four.throughputGops, one.throughputGops);
    EXPECT_EQ(four.cores, 4u);
}

} // namespace
} // namespace dpu
