/**
 * @file
 * Unit tests for src/support: logging, rng, bitvec, stats, table,
 * and the strict CLI value parsers.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/bitvec.hh"
#include "support/cli.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace dpu {
namespace {

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(dpu_panic("boom"), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(dpu_fatal("bad input"), FatalError);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(dpu_assert(1 + 1 == 2, "math"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(dpu_assert(false, "nope"), PanicError);
}

TEST(Logging, MessageContainsFileAndText)
{
    try {
        dpu_fatal("special-marker");
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("special-marker"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_support"),
                  std::string::npos);
    }
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversDomain)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(BitVec, StartsClear)
{
    BitVec bv(100);
    EXPECT_EQ(bv.count(), 0u);
    EXPECT_TRUE(bv.none());
    EXPECT_EQ(bv.firstZero(), 0u);
}

TEST(BitVec, SetAndGet)
{
    BitVec bv(70);
    bv.set(0);
    bv.set(69);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(69));
    EXPECT_FALSE(bv.get(35));
    EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVec, FirstZeroSkipsSetPrefix)
{
    BitVec bv(10);
    for (size_t i = 0; i < 4; ++i)
        bv.set(i);
    EXPECT_EQ(bv.firstZero(), 4u);
    bv.clear(2);
    EXPECT_EQ(bv.firstZero(), 2u);
}

TEST(BitVec, FirstZeroFullReturnsSize)
{
    BitVec bv(65);
    for (size_t i = 0; i < 65; ++i)
        bv.set(i);
    EXPECT_EQ(bv.firstZero(), 65u);
}

TEST(BitVec, AllOnesConstructor)
{
    BitVec bv(130, true);
    EXPECT_EQ(bv.count(), 130u);
    EXPECT_EQ(bv.firstZero(), 130u);
}

TEST(BitVec, ResetClearsAll)
{
    BitVec bv(64, true);
    bv.reset();
    EXPECT_TRUE(bv.none());
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(Summary, EmptyMeanPanics)
{
    Summary s;
    EXPECT_THROW(s.mean(), PanicError);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, AlignedOutput)
{
    TablePrinter t({"name", "value"});
    t.row().cell("x").num(1.5, 1);
    t.row().cell("longer").num(static_cast<long long>(42));
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TablePrinter t({"a", "b"});
    t.row().cell("1").cell("2");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Cli, ParseUint32AcceptsPlainDecimals)
{
    uint32_t v = 99;
    EXPECT_TRUE(parseUint32Arg("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseUint32Arg("8", v));
    EXPECT_EQ(v, 8u);
    EXPECT_TRUE(parseUint32Arg("4294967295", v));
    EXPECT_EQ(v, 4294967295u);
}

TEST(Cli, ParseUint32RejectsGarbage)
{
    uint32_t v = 7;
    // The atoi failure modes this parser exists to catch.
    EXPECT_FALSE(parseUint32Arg("abc", v));
    EXPECT_FALSE(parseUint32Arg("", v));
    EXPECT_FALSE(parseUint32Arg("4x", v));
    EXPECT_FALSE(parseUint32Arg("-1", v));
    EXPECT_FALSE(parseUint32Arg(" 4", v));
    EXPECT_FALSE(parseUint32Arg("+4", v));
    EXPECT_FALSE(parseUint32Arg("4294967296", v)); // 2^32
    EXPECT_FALSE(parseUint32Arg(nullptr, v));
    EXPECT_EQ(v, 7u); // untouched on failure
}

TEST(Cli, ParseUint32ListSplitsOnCommas)
{
    // The dse_sweep --axes value lists ("depth=1,2,3").
    std::vector<uint32_t> v;
    EXPECT_TRUE(parseUint32ListArg("8", v));
    EXPECT_EQ(v, (std::vector<uint32_t>{8}));
    EXPECT_TRUE(parseUint32ListArg("1,2,3", v));
    EXPECT_EQ(v, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(Cli, ParseUint32ListRejectsJunkWithoutClobbering)
{
    std::vector<uint32_t> v{42};
    EXPECT_FALSE(parseUint32ListArg("", v));
    EXPECT_FALSE(parseUint32ListArg(nullptr, v));
    EXPECT_FALSE(parseUint32ListArg(",", v));
    EXPECT_FALSE(parseUint32ListArg("1,", v));
    EXPECT_FALSE(parseUint32ListArg(",1", v));
    EXPECT_FALSE(parseUint32ListArg("1,,2", v));
    EXPECT_FALSE(parseUint32ListArg("1,abc", v));
    EXPECT_FALSE(parseUint32ListArg("1, 2", v));
    EXPECT_FALSE(parseUint32ListArg("1,-2", v));
    EXPECT_EQ(v, (std::vector<uint32_t>{42})); // untouched on failure
}

TEST(Cli, ParseDoubleListParsesAndRejects)
{
    std::vector<double> v;
    EXPECT_TRUE(parseDoubleListArg("0.1,0.25,1e-3", v));
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 0.1);
    EXPECT_DOUBLE_EQ(v[1], 0.25);
    EXPECT_DOUBLE_EQ(v[2], 1e-3);
    EXPECT_FALSE(parseDoubleListArg("0.1,x", v));
    EXPECT_FALSE(parseDoubleListArg("0.1,", v));
    EXPECT_FALSE(parseDoubleListArg("", v));
}

TEST(Cli, ParseUint64CoversTheFullRange)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseUint64Arg("18446744073709551615", v));
    EXPECT_EQ(v, 18446744073709551615ull);
    EXPECT_FALSE(parseUint64Arg("18446744073709551616", v));
    EXPECT_FALSE(parseUint64Arg("1e3", v));
}

TEST(Cli, ParseDoubleAcceptsNumbersRejectsJunk)
{
    double v = -1;
    EXPECT_TRUE(parseDoubleArg("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(parseDoubleArg("1e-3", v));
    EXPECT_DOUBLE_EQ(v, 1e-3);
    EXPECT_TRUE(parseDoubleArg("-2", v));
    EXPECT_DOUBLE_EQ(v, -2.0);
    EXPECT_FALSE(parseDoubleArg("x", v));
    EXPECT_FALSE(parseDoubleArg("", v));
    EXPECT_FALSE(parseDoubleArg("0.5junk", v));
    EXPECT_FALSE(parseDoubleArg("nan", v));
    EXPECT_FALSE(parseDoubleArg("inf", v));
    EXPECT_FALSE(parseDoubleArg(" 1", v));
    EXPECT_FALSE(parseDoubleArg(nullptr, v));
}

TEST(Cli, ParseFractionRestrictsToUnitInterval)
{
    // The serving benches' --priority-mix flag: a probability, so
    // anything outside [0, 1] (or non-numeric) is a strict-validation
    // failure, not a clamp.
    double v = -1;
    EXPECT_TRUE(parseFractionArg("0", v));
    EXPECT_DOUBLE_EQ(v, 0.0);
    EXPECT_TRUE(parseFractionArg("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(parseFractionArg("1", v));
    EXPECT_DOUBLE_EQ(v, 1.0);
    EXPECT_TRUE(parseFractionArg("5e-1", v));
    EXPECT_DOUBLE_EQ(v, 0.5);

    EXPECT_FALSE(parseFractionArg("-0.1", v));
    EXPECT_FALSE(parseFractionArg("1.01", v));
    EXPECT_FALSE(parseFractionArg("abc", v));
    EXPECT_FALSE(parseFractionArg("0.5junk", v));
    EXPECT_FALSE(parseFractionArg("", v));
    EXPECT_FALSE(parseFractionArg(nullptr, v));
    EXPECT_DOUBLE_EQ(v, 0.5); // failures must not clobber the output
}

TEST(Cli, ParseGbpsAcceptsPositiveRatesAndInf)
{
    // The fleet flags' --xfer-gbps: a positive link rate, or the
    // literal "inf" for the free-link default.
    double v = -1;
    EXPECT_TRUE(parseGbpsArg("4", v));
    EXPECT_DOUBLE_EQ(v, 4.0);
    EXPECT_TRUE(parseGbpsArg("0.5", v));
    EXPECT_DOUBLE_EQ(v, 0.5);
    EXPECT_TRUE(parseGbpsArg("2e1", v));
    EXPECT_DOUBLE_EQ(v, 20.0);
    EXPECT_TRUE(parseGbpsArg("inf", v));
    EXPECT_TRUE(std::isinf(v));
    EXPECT_GT(v, 0.0);
}

TEST(Cli, ParseGbpsRejectsZeroNegativeAndJunk)
{
    double v = 3.0;
    // A 0 GB/s link would deadlock every transfer: strict failure,
    // not a model.
    EXPECT_FALSE(parseGbpsArg("0", v));
    EXPECT_FALSE(parseGbpsArg("-2", v));
    EXPECT_FALSE(parseGbpsArg("junk", v));
    EXPECT_FALSE(parseGbpsArg("4x", v));
    EXPECT_FALSE(parseGbpsArg("Inf", v));   // exact spelling only
    EXPECT_FALSE(parseGbpsArg("inf0", v));  // trailing junk
    EXPECT_FALSE(parseGbpsArg("nan", v));
    EXPECT_FALSE(parseGbpsArg("", v));
    EXPECT_FALSE(parseGbpsArg(nullptr, v));
    EXPECT_DOUBLE_EQ(v, 3.0); // untouched on failure
}

} // namespace
} // namespace dpu
