/**
 * @file
 * Tests for the DAG optimization passes (CSE, DCE) and their
 * interaction with the compiler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/compiler.hh"
#include "dag/eval.hh"
#include "dag/io.hh"
#include "dag/optimize.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

TEST(Cse, CollapsesIdenticalNodes)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId s1 = d.addNode(OpType::Add, {a, b});
    NodeId s2 = d.addNode(OpType::Add, {a, b}); // duplicate
    d.addNode(OpType::Mul, {s1, s2});
    auto res = eliminateCommonSubexpressions(d);
    EXPECT_EQ(res.removedNodes, 1u);
    EXPECT_EQ(res.valueOf[s1], res.valueOf[s2]);
    EXPECT_EQ(res.dag.numOperations(), 2u);
}

TEST(Cse, CommutativityCanonicalized)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId s1 = d.addNode(OpType::Mul, {a, b});
    NodeId s2 = d.addNode(OpType::Mul, {b, a}); // swapped operands
    d.addNode(OpType::Add, {s1, s2});
    auto res = eliminateCommonSubexpressions(d);
    EXPECT_EQ(res.removedNodes, 1u);
}

TEST(Cse, DifferentOpsNotMerged)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId s1 = d.addNode(OpType::Add, {a, b});
    NodeId s2 = d.addNode(OpType::Mul, {a, b});
    d.addNode(OpType::Add, {s1, s2});
    auto res = eliminateCommonSubexpressions(d);
    EXPECT_EQ(res.removedNodes, 0u);
}

TEST(Cse, CascadingDuplicatesCollapseInOnePass)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId s1 = d.addNode(OpType::Add, {a, b});
    NodeId s2 = d.addNode(OpType::Add, {a, b});
    NodeId t1 = d.addNode(OpType::Mul, {s1, s1});
    NodeId t2 = d.addNode(OpType::Mul, {s2, s2}); // dup via remap
    d.addNode(OpType::Add, {t1, t2});
    auto res = eliminateCommonSubexpressions(d);
    EXPECT_EQ(res.removedNodes, 2u);
}

TEST(Cse, ValuePreserving)
{
    Dag d = generateRandomDag(12, 400, 21);
    auto res = eliminateCommonSubexpressions(d);
    Rng rng(5);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    auto before = evaluate(d, in);
    auto after = evaluate(res.dag, in);
    for (NodeId v = 0; v < d.numNodes(); ++v)
        EXPECT_DOUBLE_EQ(after[res.valueOf[v]], before[v]);
}

TEST(Dce, DropsNodesOffTheQueryCone)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId keep = d.addNode(OpType::Add, {a, b});
    NodeId dead = d.addNode(OpType::Mul, {a, b});
    d.addNode(OpType::Mul, {keep, a});
    auto res = eliminateDeadNodes(d, {4});
    EXPECT_EQ(res.removedNodes, 1u);
    EXPECT_EQ(res.valueOf[dead], invalidNode);
    EXPECT_NE(res.valueOf[keep], invalidNode);
    // Inputs survive even if unused by the query.
    EXPECT_EQ(res.dag.numInputs(), 2u);
}

TEST(Dce, NoOutputsMeansNothingDead)
{
    Dag d = generateRandomDag(8, 100, 22);
    auto res = eliminateDeadNodes(d);
    EXPECT_EQ(res.removedNodes, 0u);
    EXPECT_EQ(res.dag.numOperations(), d.numOperations());
}

TEST(Optimize, PipelineComposes)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId s1 = d.addNode(OpType::Add, {a, b});
    NodeId s2 = d.addNode(OpType::Add, {b, a}); // CSE victim
    NodeId root = d.addNode(OpType::Mul, {s1, s1});
    d.addNode(OpType::Mul, {s2, b}); // dead w.r.t. root
    auto res = optimizeDag(d, {root});
    EXPECT_EQ(res.removedNodes, 2u);
    EXPECT_NE(res.valueOf[root], invalidNode);
}

TEST(Optimize, OptimizedDagCompilesAndMatches)
{
    // End-to-end: optimize toward one root, compile, simulate, and
    // compare with the unoptimized evaluation of that root.
    Dag d = generateRandomDag(16, 600, 23);
    NodeId root = static_cast<NodeId>(d.numNodes() - 1);
    auto opt = optimizeDag(d, {root});

    auto prog = compile(opt.dag, minEdpConfig());
    Rng rng(6);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    auto res = runAndCheck(prog, opt.dag, in);

    double want = evaluate(d, in)[root];
    NodeId new_root = opt.valueOf[root];
    bool found = false;
    for (size_t k = 0; k < prog.outputs.size(); ++k) {
        // The compiled outputs are binarized ids; binarize preserves
        // values per original node, so compare against the golden
        // evaluation of the optimized dag instead.
        (void)k;
    }
    auto opt_vals = evaluate(opt.dag, in);
    EXPECT_DOUBLE_EQ(opt_vals[new_root], want);
    found = !res.outputs.empty();
    EXPECT_TRUE(found);
}

TEST(Dot, EmitsWellFormedGraph)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    d.addNode(OpType::Add, {a, b});
    std::ostringstream os;
    writeDot(d, os, "g");
    std::string s = os.str();
    EXPECT_NE(s.find("digraph g {"), std::string::npos);
    EXPECT_NE(s.find("n0 -> n2"), std::string::npos);
    EXPECT_NE(s.find("shape=box"), std::string::npos);
    EXPECT_EQ(s.back(), '\n');
}

} // namespace
} // namespace dpu
