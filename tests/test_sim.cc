/**
 * @file
 * Unit tests for the cycle-accurate simulator.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

CompiledProgram
tinyProgram(Dag &d)
{
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    d.addNode(OpType::Mul, {a, b});
    return compile(d, cfgOf(1, 2, 8));
}

TEST(Sim, TinyProgramComputes)
{
    Dag d;
    auto prog = tinyProgram(d);
    Machine m(prog);
    auto res = m.run({3.0, 5.0});
    ASSERT_EQ(res.outputs.size(), 1u);
    EXPECT_DOUBLE_EQ(res.outputs[0], 15.0);
}

TEST(Sim, CyclesMatchInstructionsPlusDrain)
{
    Dag d;
    auto prog = tinyProgram(d);
    auto res = Machine(prog).run({1.0, 2.0});
    EXPECT_EQ(res.stats.cycles,
              prog.instructions.size() + prog.cfg.pipelineStages());
    EXPECT_EQ(res.stats.cycles, prog.stats.cycles);
}

TEST(Sim, KindCountsMatchCompiler)
{
    Dag d = generateRandomDag(16, 400, 61);
    auto prog = compile(d, cfgOf(3, 16, 32));
    Rng rng(62);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = rng.uniform() + 0.5;
    auto res = Machine(prog).run(in);
    for (size_t k = 0; k < 6; ++k)
        EXPECT_EQ(res.stats.kindCount[k], prog.stats.kindCount[k]);
}

TEST(Sim, RerunWithDifferentInputs)
{
    // The static-DAG scenario: one program, many input vectors.
    Dag d = generateRandomDag(10, 200, 63);
    auto prog = compile(d, cfgOf(2, 8, 32));
    Machine m(prog);
    for (uint64_t trial = 0; trial < 5; ++trial) {
        Rng rng(100 + trial);
        std::vector<double> in(d.numInputs());
        for (auto &x : in)
            x = rng.uniform() + 0.5;
        runAndCheck(prog, d, in);
    }
}

TEST(Sim, WrongInputCountPanics)
{
    Dag d;
    auto prog = tinyProgram(d);
    Machine m(prog);
    EXPECT_THROW(m.run({1.0}), PanicError);
}

TEST(Sim, OccupancyTraceRecordsLiveRegisters)
{
    Dag d = generateRandomDag(32, 2000, 64);
    auto prog = compile(d, cfgOf(3, 16, 64));
    Rng rng(65);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = rng.uniform() + 0.5;
    SimOptions opts;
    opts.traceOccupancy = true;
    opts.traceInterval = 8;
    auto res = Machine(prog, opts).run(in);
    ASSERT_FALSE(res.stats.occupancyTrace.empty());
    // Trace rows have one entry per bank, all within R.
    for (const auto &row : res.stats.occupancyTrace) {
        ASSERT_EQ(row.size(), prog.cfg.banks);
        for (uint32_t v : row)
            EXPECT_LE(v, prog.cfg.regsPerBank);
    }
    EXPECT_GT(res.stats.peakLiveRegisters, 0u);
}

TEST(Sim, OccupancyTraceStaysWithinMaxTraceSamples)
{
    // Regression: the occupancy trace used to grow one row per
    // traceInterval cycles for the whole run, unbounded. It is now
    // capped at SimOptions::maxTraceSamples via stride-doubling
    // decimation that keeps whole-run coverage (the tail is never
    // truncated).
    Dag d = generateRandomDag(32, 4000, 91);
    auto prog = compile(d, cfgOf(2, 16, 64));
    Rng rng(92);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = rng.uniform() + 0.5;

    SimOptions opts;
    opts.traceOccupancy = true;
    opts.traceInterval = 2;
    opts.maxTraceSamples = 8;
    auto res = Machine(prog, opts).run(in);

    // Far more sample opportunities than the cap, yet the trace is
    // bounded — and not trivially empty either.
    ASSERT_GT(res.stats.cycles / opts.traceInterval,
              uint64_t{opts.maxTraceSamples});
    EXPECT_LE(res.stats.occupancyTrace.size(),
              size_t{opts.maxTraceSamples});
    EXPECT_GE(res.stats.occupancyTrace.size(),
              size_t{opts.maxTraceSamples} / 2);

    // The effective stride is the configured interval doubled some
    // whole number of times, and row i still means cycle i * stride.
    ASSERT_GE(res.stats.traceStride, opts.traceInterval);
    uint64_t ratio = res.stats.traceStride / opts.traceInterval;
    EXPECT_EQ(res.stats.traceStride % opts.traceInterval, 0u);
    EXPECT_EQ(ratio & (ratio - 1), 0u) << "stride grew non-doubly";

    // Whole-run coverage: the decimated trace still spans the run —
    // the last kept row lies within one (doubled) stride of the end.
    uint64_t last_cycle =
        (res.stats.occupancyTrace.size() - 1) * res.stats.traceStride;
    EXPECT_LE(last_cycle, res.stats.cycles);
    EXPECT_GE(last_cycle + 2 * res.stats.traceStride,
              res.stats.cycles);

    // Rows keep their shape through decimation.
    for (const auto &row : res.stats.occupancyTrace)
        ASSERT_EQ(row.size(), prog.cfg.banks);
}

TEST(Sim, OccupancyTraceUnlimitedAndZeroIntervalModes)
{
    Dag d = generateRandomDag(16, 600, 93);
    auto prog = compile(d, cfgOf(2, 8, 32));
    Rng rng(94);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = rng.uniform() + 0.5;

    // maxTraceSamples = 0 disables the cap (the pre-fix behavior,
    // kept opt-in): one row per interval for the whole run.
    SimOptions unlimited;
    unlimited.traceOccupancy = true;
    unlimited.traceInterval = 4;
    unlimited.maxTraceSamples = 0;
    auto res = Machine(prog, unlimited).run(in);
    EXPECT_EQ(res.stats.traceStride, 4u);
    EXPECT_GE(res.stats.occupancyTrace.size(),
              res.stats.cycles / 4);

    // traceInterval = 0 must not divide by zero: it clamps to
    // every-cycle sampling (stride 1), still under the cap.
    SimOptions zero;
    zero.traceOccupancy = true;
    zero.traceInterval = 0;
    zero.maxTraceSamples = 16;
    auto rz = Machine(prog, zero).run(in);
    EXPECT_GE(rz.stats.traceStride, 1u);
    EXPECT_LE(rz.stats.occupancyTrace.size(), 16u);
}

TEST(Sim, EventCountsArePlausible)
{
    Dag d = generateRandomDag(24, 800, 66);
    auto prog = compile(d, cfgOf(3, 16, 32));
    Rng rng(67);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = rng.uniform() + 0.5;
    auto res = Machine(prog).run(in);
    // Every binarized operation executes at least once (replication
    // can only add).
    EXPECT_GE(res.stats.peOperations, prog.stats.numOperations);
    EXPECT_EQ(res.stats.peOperations, prog.stats.peOpsExecuted);
    // Each load/store touches memory once.
    using K = InstrKind;
    EXPECT_EQ(res.stats.memReads,
              res.stats.kindCount[static_cast<size_t>(K::Load)]);
    EXPECT_EQ(res.stats.memWrites,
              res.stats.kindCount[static_cast<size_t>(K::Store)] +
                  res.stats.kindCount[static_cast<size_t>(K::Store4)]);
    // Fetch traffic equals the packed program footprint.
    EXPECT_EQ(res.stats.instrBitsFetched, prog.stats.programBits);
}

TEST(Sim, DecodedProgramRunsIdentically)
{
    // Compile -> encode -> decode -> run: the binary path works.
    Dag d = generateRandomDag(12, 300, 68);
    auto prog = compile(d, cfgOf(2, 8, 32));
    auto image = encodeProgram(prog.cfg, prog.instructions);
    CompiledProgram prog2 = prog;
    prog2.instructions =
        decodeProgram(prog.cfg, image, prog.instructions.size());
    Rng rng(69);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = rng.uniform() + 0.5;
    auto a = Machine(prog).run(in);
    auto b = Machine(prog2).run(in);
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_DOUBLE_EQ(a.outputs[i], b.outputs[i]);
}

} // namespace
} // namespace dpu

#include "sim/batch.hh"

namespace dpu {
namespace {

TEST(Batch, FourCoresQuadrupleThroughput)
{
    Dag d = generateRandomDag(16, 400, 71);
    auto prog = compile(d, cfgOf(3, 16, 32));
    Rng rng(72);
    std::vector<std::vector<double>> batch;
    for (int k = 0; k < 8; ++k) {
        std::vector<double> in(d.numInputs());
        for (auto &x : in)
            x = 0.5 + rng.uniform();
        batch.push_back(std::move(in));
    }
    BatchMachine one(prog, 1, prog.stats.numOperations);
    BatchMachine four(prog, 4, prog.stats.numOperations);
    auto r1 = one.run(batch);
    auto r4 = four.run(batch);
    ASSERT_EQ(r1.runs.size(), 8u);
    ASSERT_EQ(r4.runs.size(), 8u);
    EXPECT_EQ(r1.totalOperations, r4.totalOperations);
    // 8 inputs over 4 cores: exactly 4x fewer wall cycles.
    EXPECT_EQ(r1.wallCycles, r4.wallCycles * 4);
    EXPECT_NEAR(r4.throughputGops(300e6),
                4 * r1.throughputGops(300e6), 1e-9);
}

TEST(Batch, UnevenBatchRoundsUp)
{
    Dag d = generateRandomDag(8, 100, 73);
    auto prog = compile(d, cfgOf(2, 8, 32));
    std::vector<std::vector<double>> batch(
        5, std::vector<double>(d.numInputs(), 1.0));
    BatchMachine four(prog, 4, prog.stats.numOperations);
    auto r = four.run(batch);
    // Core 0 gets 2 slices, the rest 1: wall = 2 runs.
    EXPECT_EQ(r.wallCycles, 2 * prog.stats.cycles);
}

} // namespace
} // namespace dpu
